"""A storage partition: one dataset's slice of one Node Controller.

Each dataset partition is managed by an LSM-based storage engine holding a
primary index, a primary-key index, and the dataset's local secondary indexes
(Section II-C).  Under DynaHash the primary index is a
:class:`~repro.bucketed.bucketed_lsm.BucketedLSMTree`; the primary-key index
and the secondary indexes keep the traditional single-LSM layout (storage
Option 1), exactly as Section IV chooses.

The partition also implements the NC-side mechanics of the rebalance
operation: bucket snapshots, a *pending received* area that is invisible to
queries until commit, replicated-write application, and the idempotent
install/cleanup tasks used by the two-phase commit and its recovery cases.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, Iterator, List, Mapping, Optional, Tuple

from ..bucketed.bucket import Bucket
from ..bucketed.bucketed_lsm import BucketedLSMTree, MaintenanceReport
from ..common.config import BucketingConfig, LSMConfig
from ..common.errors import StorageError
from ..hashing.bucket_id import BucketId
from ..lsm.entry import Entry
from ..lsm.stats import StorageStats
from ..lsm.tree import LSMTree
from ..lsm.wal import LogRecordType, WriteAheadLog
from .dataset import DatasetSpec, SecondaryIndexSpec


def _secondary_entry_key(spec: SecondaryIndexSpec, record: Mapping[str, Any], primary_key: Any) -> Tuple:
    """Secondary index keys are (secondary key ..., primary key)."""
    return spec.secondary_key(record) + (primary_key,)


@dataclass
class PendingReceivedBucket:
    """Rebalance data received for one bucket, invisible until commit."""

    bucket: Bucket
    #: Per-secondary-index received-list ids.
    secondary_list_ids: Dict[str, int] = field(default_factory=dict)
    #: Entries replicated from the source's concurrent writes, applied to the
    #: received bucket's memory component and buffered per secondary index.
    replicated_records: int = 0
    secondary_buffer: Dict[str, List[Entry]] = field(default_factory=dict)


class StoragePartition:
    """One dataset partition on one NC."""

    def __init__(
        self,
        dataset: DatasetSpec,
        partition_id: int,
        node_id: str,
        initial_buckets: Iterable[BucketId],
        lsm_config: Optional[LSMConfig] = None,
        bucketing_config: Optional[BucketingConfig] = None,
        wal: Optional[WriteAheadLog] = None,
    ) -> None:
        self.dataset = dataset
        self.partition_id = partition_id
        self.node_id = node_id
        self.lsm_config = lsm_config or LSMConfig()
        self.bucketing_config = bucketing_config or BucketingConfig()
        self.wal = wal if wal is not None else WriteAheadLog(owner=f"{node_id}/p{partition_id}")

        self.primary = BucketedLSMTree(
            name=f"{dataset.name}/p{partition_id}/primary",
            partition_id=partition_id,
            initial_buckets=initial_buckets,
            lsm_config=self.lsm_config,
            bucketing_config=self.bucketing_config,
            # Partitions created on freshly added nodes start with no buckets;
            # a rebalance installs buckets into them afterwards.
            allow_empty=True,
        )
        self.primary_key_index = LSMTree(
            name=f"{dataset.name}/p{partition_id}/pkidx", config=self.lsm_config
        )
        self.secondary_indexes: Dict[str, LSMTree] = {
            spec.name: LSMTree(
                name=f"{dataset.name}/p{partition_id}/{spec.name}",
                config=self.lsm_config,
                routing_key_extractor=lambda composite: composite[-1],
            )
            for spec in dataset.secondary_indexes
        }
        #: Rebalance-received buckets, invisible to queries until commit.
        self.pending_received: Dict[BucketId, PendingReceivedBucket] = {}
        #: True while the finalization phase blocks reads and writes.
        self.blocked = False

    # -------------------------------------------------------------- helpers

    def _all_trees(self) -> List[LSMTree]:
        trees: List[LSMTree] = [bucket.tree for bucket in self.primary.buckets()]
        trees.append(self.primary_key_index)
        trees.extend(self.secondary_indexes.values())
        return trees

    def _check_not_blocked(self) -> None:
        if self.blocked:
            raise StorageError(
                f"partition {self.partition_id} is blocked by a rebalance finalization"
            )

    # ------------------------------------------------------------ write path

    def insert(
        self,
        record: Mapping[str, Any],
        log: bool = True,
        primary_key: Optional[Any] = None,
    ) -> Any:
        """Insert (or upsert) a record into every index of the partition.

        ``primary_key`` lets callers that already extracted the key (the data
        feed routes on it) skip a second extraction.
        """
        self._check_not_blocked()
        if primary_key is None:
            primary_key = self.dataset.primary_key_of(record)
        record_dict = dict(record)
        self.primary.insert(primary_key, record_dict)
        self.primary_key_index.insert(primary_key, None)
        for spec in self.dataset.secondary_indexes:
            index = self.secondary_indexes[spec.name]
            index.insert(_secondary_entry_key(spec, record_dict, primary_key), spec.covered_value(record_dict))
        if log:
            self.wal.append(
                LogRecordType.INSERT,
                self.dataset.name,
                self.partition_id,
                {"key": primary_key, "value": record_dict},
            )
        return primary_key

    def insert_many(
        self,
        routed_records: Iterable[Tuple[Any, int, Mapping[str, Any]]],
        log: bool = True,
    ) -> int:
        """Insert a batch of ``(primary_key, key_hash, record)`` triples.

        Equivalent to calling :meth:`insert` per record (same index writes,
        same WAL records, same resulting state) with the per-call overhead —
        blocked checks, method resolution, secondary-spec iteration setup,
        key hashing — paid once per batch.  The data feed groups each routed
        batch by partition and lands it through here, reusing the hash it
        already computed for routing.
        """
        self._check_not_blocked()
        primary_insert = self.primary.insert_routed
        pk_insert = self.primary_key_index.insert
        secondary_specs = self.dataset.secondary_indexes
        wal_append = self.wal.append if log else None
        dataset_name = self.dataset.name
        count = 0
        for primary_key, hashed, record in routed_records:
            record_dict = dict(record)
            primary_insert(primary_key, record_dict, hashed)
            pk_insert(primary_key, None)
            for spec in secondary_specs:
                self.secondary_indexes[spec.name].insert(
                    _secondary_entry_key(spec, record_dict, primary_key),
                    spec.covered_value(record_dict),
                )
            if wal_append is not None:
                wal_append(
                    LogRecordType.INSERT,
                    dataset_name,
                    self.partition_id,
                    {"key": primary_key, "value": record_dict},
                )
            count += 1
        return count

    def delete(self, primary_key: Any, record: Optional[Mapping[str, Any]] = None, log: bool = True) -> None:
        """Delete a record by primary key.

        Secondary-index tombstones need the old secondary keys; AsterixDB
        reads the old record to produce them, and so do we when ``record`` is
        not supplied.
        """
        self._check_not_blocked()
        old_record = dict(record) if record is not None else self.primary.get(primary_key)
        self.primary.delete(primary_key)
        self.primary_key_index.delete(primary_key)
        if old_record is not None:
            for spec in self.dataset.secondary_indexes:
                index = self.secondary_indexes[spec.name]
                index.delete(_secondary_entry_key(spec, old_record, primary_key))
        if log:
            self.wal.append(
                LogRecordType.DELETE,
                self.dataset.name,
                self.partition_id,
                {"key": primary_key},
            )

    # ------------------------------------------------------------- read path

    def lookup(self, primary_key: Any) -> Optional[Dict[str, Any]]:
        """Point lookup by primary key (searches only the owning bucket).

        Keys whose bucket does not live on this partition return ``None``
        rather than raising: a query routed with a stale directory copy during
        a rebalance may probe the old location of a key that already moved.
        """
        self._check_not_blocked()
        return self.primary.lookup(primary_key)

    def scan_primary(
        self, low: Any = None, high: Any = None, ordered: bool = False
    ) -> Iterator[Entry]:
        """Scan the partition's primary index (unordered or merge-sorted)."""
        self._check_not_blocked()
        return self.primary.scan(low=low, high=high, ordered=ordered)

    def scan_secondary(
        self, index_name: str, low: Any = None, high: Any = None
    ) -> Iterator[Entry]:
        """Scan one secondary index; entries are ((sk..., pk), covered_fields)."""
        self._check_not_blocked()
        if index_name not in self.secondary_indexes:
            raise StorageError(f"partition has no secondary index {index_name!r}")
        return self.secondary_indexes[index_name].scan(low, high)

    def count_keys(self) -> int:
        """COUNT(*) served from the primary key index (Section II-C)."""
        return len(self.primary_key_index)

    # ----------------------------------------------------------- maintenance

    @property
    def memory_bytes(self) -> int:
        return sum(tree.memory.size_bytes for tree in self._all_trees())

    def maintain(self, force_flush: bool = False) -> MaintenanceReport:
        """Run the partition's flush/merge/split pass.

        AsterixDB budgets memory components per dataset partition; when the
        budget is exceeded the dataset's memory components are flushed.  After
        flushing, each index runs its merge policy and the primary index may
        split buckets that exceeded the maximum bucket size.
        """
        report = MaintenanceReport()
        over_budget = self.memory_bytes >= self.lsm_config.memory_component_bytes
        if force_flush or over_budget:
            report.flush_bytes += self.primary.flush_all()
            for tree in [self.primary_key_index, *self.secondary_indexes.values()]:
                component = tree.flush()
                if component is not None:
                    report.flush_bytes += component.size_bytes
        primary_report = self.primary.maintain(force_flush=False)
        primary_report.merge_into(report)
        for tree in [self.primary_key_index, *self.secondary_indexes.values()]:
            before = tree.stats.snapshot()
            if tree.maybe_merge() is not None:
                delta = tree.stats.diff(before)
                report.merge_read_bytes += delta.bytes_merged_read
                report.merge_write_bytes += delta.bytes_merged_written
        return report

    # --------------------------------------------------------------- sizing

    @property
    def size_bytes(self) -> int:
        return sum(tree.size_bytes for tree in self._all_trees())

    @property
    def primary_size_bytes(self) -> int:
        return self.primary.size_bytes

    def bucket_sizes(self) -> Dict[BucketId, int]:
        return self.primary.bucket_sizes()

    def stats_snapshot(self) -> StorageStats:
        """Aggregate storage stats across every index (for cost accounting)."""
        total = StorageStats()
        total.add(self.primary.aggregated_stats())
        total.add(self.primary_key_index.stats)
        for tree in self.secondary_indexes.values():
            total.add(tree.stats)
        return total

    def components_opened_total(self) -> int:
        """``components_opened`` summed across every index — the only stat a
        point lookup's cost charge reads, cheap enough to sample before and
        after each probe (a full :meth:`stats_snapshot` pair per ``get`` was
        the hottest line of the read path)."""
        total = self.primary.components_opened_total()
        total += self.primary_key_index.stats.components_opened
        for tree in self.secondary_indexes.values():
            total += tree.stats.components_opened
        return total

    def record_count(self) -> int:
        return len(self.primary)

    # ----------------------------------------------- rebalance: source side

    def snapshot_bucket(self, bucket_id: BucketId) -> List:
        """Flush and pin the bucket's disk components (Section V-A snapshot)."""
        return self.primary.snapshot_bucket(bucket_id)

    def scan_bucket_snapshot(self, snapshot_components: List) -> List[Entry]:
        """Materialise the records of a pinned bucket snapshot, newest first
        reconciled (the source-side scan of the data movement phase)."""
        from ..lsm.iterators import merge_entries

        return merge_entries([c.entries() for c in snapshot_components], drop_tombstones=True)

    def release_bucket_snapshot(self, snapshot_components: List) -> None:
        Bucket.release_snapshot(snapshot_components)

    def cleanup_moved_bucket(self, bucket_id: BucketId) -> None:
        """Source-side commit task: drop the moved bucket from the primary
        index and lazily invalidate its entries in every secondary index.

        Both steps are idempotent (Section V-D relies on this).
        """
        self.primary.remove_bucket(bucket_id)
        for tree in self.secondary_indexes.values():
            tree.invalidate_bucket(bucket_id.prefix, bucket_id.depth)
        self.primary_key_index.invalidate_bucket(bucket_id.prefix, bucket_id.depth)
        self.primary.force_manifest()

    # ------------------------------------------ rebalance: destination side

    def receive_bucket(self, bucket_id: BucketId, entries: Iterable[Entry]) -> PendingReceivedBucket:
        """Store scanned records for a moving bucket, invisible to queries.

        The records are bulk-loaded into a bucket object that is *not*
        registered in the primary index's local directory, and into
        received-component lists of each secondary index — the "separate list
        of components" design of Section V-B.

        The pending bucket is created on the first call (which is how the
        rebalance opens the log-replication channel before the scan arrives);
        later calls bulk-load additional scanned data into the same pending
        state.  Loaded components are always placed *older* than the received
        bucket's memory component, preserving the required ordering between
        scanned data and replicated log records.
        """
        pending = self.pending_received.get(bucket_id)
        if pending is None:
            bucket = Bucket(
                bucket_id, config=self.lsm_config, index_name=f"{self.dataset.name}/received"
            )
            pending = PendingReceivedBucket(bucket=bucket)
            for spec in self.dataset.secondary_indexes:
                index = self.secondary_indexes[spec.name]
                pending.secondary_list_ids[spec.name] = index.create_received_list()
                pending.secondary_buffer[spec.name] = []
            self.pending_received[bucket_id] = pending
        entry_list = list(entries)
        if not entry_list:
            return pending
        pending.bucket.tree.add_loaded_component(entry_list)
        for spec in self.dataset.secondary_indexes:
            index = self.secondary_indexes[spec.name]
            secondary_entries = []
            for entry in entry_list:
                if entry.tombstone or entry.value is None:
                    continue
                secondary_entries.append(
                    Entry(
                        key=_secondary_entry_key(spec, entry.value, entry.key),
                        value=spec.covered_value(entry.value),
                        seqnum=entry.seqnum,
                    )
                )
            if secondary_entries:
                index.append_to_received_list(
                    pending.secondary_list_ids[spec.name], secondary_entries
                )
        return pending

    def apply_replicated_write(self, bucket_id: BucketId, entry: Entry) -> None:
        """Apply one replicated log record to the pending received bucket.

        Replicated records land in the received bucket's memory component
        (newer than the bulk-loaded scan) and are buffered for the secondary
        indexes; they become durable when :meth:`prepare_rebalance` flushes
        them.
        """
        pending = self.pending_received.get(bucket_id)
        if pending is None:
            raise StorageError(
                f"no pending received bucket {bucket_id} on partition {self.partition_id}"
            )
        pending.bucket.tree.apply_entry(entry)
        pending.replicated_records += 1
        if entry.tombstone or entry.value is None:
            return
        for spec in self.dataset.secondary_indexes:
            pending.secondary_buffer[spec.name].append(
                Entry(
                    key=_secondary_entry_key(spec, entry.value, entry.key),
                    value=spec.covered_value(entry.value),
                    seqnum=entry.seqnum,
                )
            )

    def prepare_rebalance(self) -> int:
        """Prepare-phase NC task: flush rebalance memory components to disk.

        Returns the number of bytes flushed; after this call every received
        record is in (simulated) durable storage, so the NC can vote yes.
        """
        flushed = 0
        for pending in self.pending_received.values():
            component = pending.bucket.flush()
            if component is not None:
                flushed += component.size_bytes
            for spec_name, buffered in pending.secondary_buffer.items():
                if not buffered:
                    continue
                index = self.secondary_indexes[spec_name]
                component = index.append_to_received_list(
                    pending.secondary_list_ids[spec_name], buffered
                )
                flushed += component.size_bytes
                pending.secondary_buffer[spec_name] = []
        return flushed

    def install_received_buckets(self) -> List[BucketId]:
        """Commit task: make every received bucket visible.

        Registers the received bucket in the primary index's local directory
        and installs the secondary indexes' received component lists.
        Idempotent: a second call finds nothing pending and does nothing.
        """
        installed = []
        for bucket_id, pending in list(self.pending_received.items()):
            self.primary.adopt_bucket(pending.bucket)
            for spec_name, list_id in pending.secondary_list_ids.items():
                self.secondary_indexes[spec_name].install_received_list(list_id)
            installed.append(bucket_id)
            del self.pending_received[bucket_id]
        self.primary.force_manifest()
        return installed

    def drop_received_buckets(self) -> List[BucketId]:
        """Abort/cleanup task: delete everything received by the rebalance.

        Idempotent — dropping when nothing is pending is a no-op, which is
        what lets recovery Case 1 re-issue the cleanup to every NC.
        """
        dropped = []
        for bucket_id, pending in list(self.pending_received.items()):
            pending.bucket.deactivate()
            for spec_name, list_id in pending.secondary_list_ids.items():
                self.secondary_indexes[spec_name].drop_received_list(list_id)
            dropped.append(bucket_id)
            del self.pending_received[bucket_id]
        return dropped

    def block(self) -> None:
        """Block reads and writes (finalization phase)."""
        self.blocked = True

    def unblock(self) -> None:
        self.blocked = False

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"StoragePartition({self.dataset.name}, p{self.partition_id}@{self.node_id}, "
            f"buckets={self.primary.bucket_count}, bytes={self.size_bytes})"
        )
