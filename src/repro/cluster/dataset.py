"""Dataset and index specifications.

An AsterixDB dataset has a primary key, a primary index storing whole records,
a primary-key index storing keys only (for COUNT(*) and uniqueness checks),
and any number of local secondary indexes whose index keys are the composition
of the secondary key and the primary key (Section II-C).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Sequence, Tuple

from ..common.errors import ConfigError


@dataclass(frozen=True)
class SecondaryIndexSpec:
    """Definition of one local secondary index."""

    name: str
    #: Record fields forming the secondary key, in order.
    key_fields: Tuple[str, ...]
    #: Extra fields stored in the index entry (a covering index, as the paper
    #: builds on LineItem and Orders to enable index-only plans).
    included_fields: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigError("secondary index name must not be empty")
        if not self.key_fields:
            raise ConfigError(f"secondary index {self.name!r} needs at least one key field")

    def secondary_key(self, record: Mapping[str, Any]) -> Tuple[Any, ...]:
        """Extract the secondary-key tuple from a record."""
        return tuple(record[field_name] for field_name in self.key_fields)

    def covered_value(self, record: Mapping[str, Any]) -> Dict[str, Any]:
        """The covered (included) fields stored alongside the index entry."""
        return {field_name: record[field_name] for field_name in self.included_fields}


@dataclass(frozen=True)
class DatasetSpec:
    """Definition of one dataset."""

    name: str
    #: Record field holding the primary key.  Composite keys pass a tuple of
    #: field names.
    primary_key: Tuple[str, ...]
    secondary_indexes: Tuple[SecondaryIndexSpec, ...] = ()

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigError("dataset name must not be empty")
        if not self.primary_key:
            raise ConfigError(f"dataset {self.name!r} needs a primary key")
        names = [index.name for index in self.secondary_indexes]
        if len(names) != len(set(names)):
            raise ConfigError(f"dataset {self.name!r} has duplicate secondary index names")

    @classmethod
    def create(
        cls,
        name: str,
        primary_key: "str | Sequence[str]",
        secondary_indexes: Sequence[SecondaryIndexSpec] = (),
    ) -> "DatasetSpec":
        """Convenience constructor accepting a single-field primary key."""
        if isinstance(primary_key, str):
            key_fields: Tuple[str, ...] = (primary_key,)
        else:
            key_fields = tuple(primary_key)
        return cls(name=name, primary_key=key_fields, secondary_indexes=tuple(secondary_indexes))

    @property
    def has_composite_key(self) -> bool:
        return len(self.primary_key) > 1

    def primary_key_of(self, record: Mapping[str, Any]) -> Any:
        """Extract the primary key value (scalar for single-field keys)."""
        if len(self.primary_key) == 1:
            return record[self.primary_key[0]]
        return tuple(record[field_name] for field_name in self.primary_key)

    def index_names(self) -> List[str]:
        return [index.name for index in self.secondary_indexes]

    def index(self, name: str) -> SecondaryIndexSpec:
        for index in self.secondary_indexes:
            if index.name == name:
                return index
        raise ConfigError(f"dataset {self.name!r} has no secondary index {name!r}")
