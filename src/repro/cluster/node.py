"""Node Controllers.

An AsterixDB cluster has one Cluster Controller and multiple Node Controllers;
each NC hosts several storage partitions (4 in the paper's experiments) and a
transaction log (Section II-C).  The simulator's :class:`NodeController` owns
the partition objects of every dataset, a node-level WAL, and a simulated
clock used to accumulate the node's busy time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from ..common.clock import LamportClock, SimulatedClock
from ..common.errors import UnknownDatasetError
from ..lsm.wal import WriteAheadLog
from .partition import StoragePartition


@dataclass
class NodeController:
    """One NC: an id, its partition ids, its WAL and its clock."""

    node_id: str
    #: Global ids of the storage partitions hosted by this node.
    partition_ids: List[int]
    wal: WriteAheadLog = field(default_factory=WriteAheadLog)
    clock: SimulatedClock = field(default_factory=SimulatedClock)
    lamport: LamportClock = field(default_factory=LamportClock)
    #: dataset name -> {partition id -> partition object}
    partitions: Dict[str, Dict[int, StoragePartition]] = field(default_factory=dict)
    #: Set when the node is simulated as crashed (rebalance failure cases).
    failed: bool = False

    def __post_init__(self) -> None:
        if not self.wal.owner:
            self.wal.owner = self.node_id

    # ------------------------------------------------------------ partitions

    def add_partition(self, partition: StoragePartition) -> None:
        dataset_partitions = self.partitions.setdefault(partition.dataset.name, {})
        dataset_partitions[partition.partition_id] = partition

    def dataset_partitions(self, dataset: str) -> List[StoragePartition]:
        try:
            return [self.partitions[dataset][pid] for pid in sorted(self.partitions[dataset])]
        except KeyError:
            raise UnknownDatasetError(
                f"node {self.node_id} has no partitions of dataset {dataset!r}"
            ) from None

    def partition(self, dataset: str, partition_id: int) -> StoragePartition:
        try:
            return self.partitions[dataset][partition_id]
        except KeyError:
            raise UnknownDatasetError(
                f"node {self.node_id} has no partition {partition_id} of dataset {dataset!r}"
            ) from None

    def drop_dataset(self, dataset: str) -> None:
        self.partitions.pop(dataset, None)

    def drop_partition(self, dataset: str, partition_id: int) -> None:
        dataset_partitions = self.partitions.get(dataset)
        if dataset_partitions:
            dataset_partitions.pop(partition_id, None)

    # ---------------------------------------------------------------- sizing

    def dataset_size_bytes(self, dataset: str) -> int:
        return sum(p.size_bytes for p in self.partitions.get(dataset, {}).values())

    def total_size_bytes(self) -> int:
        return sum(
            partition.size_bytes
            for dataset_partitions in self.partitions.values()
            for partition in dataset_partitions.values()
        )

    # ---------------------------------------------------------------- faults

    def fail(self) -> None:
        """Simulate a node crash: the WAL loses its unforced tail."""
        self.failed = True
        self.wal.crash()

    def recover(self) -> None:
        """The node comes back up; rebalance recovery contacts the CC next."""
        self.failed = False

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"NodeController({self.node_id}, partitions={self.partition_ids})"
