"""Report objects returned by cluster-level operations.

Every cluster operation (ingest, query, rebalance) returns a report carrying
its *simulated* duration plus enough detail to explain it: per-node times (the
slowest node is the completion time), bytes moved, records processed.  The
benchmark harness prints these reports as the rows/series of the paper's
figures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from ..common.units import fmt_bytes, fmt_duration


@dataclass
class IngestReport:
    """Outcome of ingesting a batch of records through a data feed."""

    dataset: str
    records: int
    bytes_ingested: int
    simulated_seconds: float
    per_node_seconds: Dict[str, float] = field(default_factory=dict)
    per_partition_records: Dict[int, int] = field(default_factory=dict)
    splits: int = 0
    flush_bytes: int = 0
    merge_bytes: int = 0

    @property
    def simulated_minutes(self) -> float:
        return self.simulated_seconds / 60.0

    @property
    def bottleneck_node(self) -> str:
        if not self.per_node_seconds:
            return ""
        return max(self.per_node_seconds, key=self.per_node_seconds.get)

    def summary(self) -> str:
        return (
            f"ingested {self.records} records ({fmt_bytes(self.bytes_ingested)}) into "
            f"{self.dataset!r} in {fmt_duration(self.simulated_seconds)} "
            f"(splits={self.splits}, bottleneck={self.bottleneck_node})"
        )


@dataclass
class QueryReport:
    """Outcome of executing one query across the cluster."""

    query_name: str
    dataset_names: List[str]
    rows_returned: int
    simulated_seconds: float
    per_node_seconds: Dict[str, float] = field(default_factory=dict)
    bytes_scanned: int = 0
    records_scanned: int = 0

    @property
    def bottleneck_node(self) -> str:
        if not self.per_node_seconds:
            return ""
        return max(self.per_node_seconds, key=self.per_node_seconds.get)

    def summary(self) -> str:
        return (
            f"{self.query_name}: {self.rows_returned} rows in "
            f"{fmt_duration(self.simulated_seconds)} "
            f"({fmt_bytes(self.bytes_scanned)} scanned, bottleneck={self.bottleneck_node})"
        )


@dataclass
class RebalanceReport:
    """Outcome of one rebalance operation (committed or aborted)."""

    strategy: str
    dataset: str
    old_nodes: int
    new_nodes: int
    committed: bool
    simulated_seconds: float
    #: Seconds per phase: initialization, data movement, finalization.
    phase_seconds: Dict[str, float] = field(default_factory=dict)
    per_node_seconds: Dict[str, float] = field(default_factory=dict)
    buckets_moved: int = 0
    records_moved: int = 0
    bytes_scanned: int = 0
    bytes_shipped: int = 0
    bytes_loaded: int = 0
    concurrent_writes_applied: int = 0
    replicated_log_records: int = 0
    blocked_seconds: float = 0.0
    abort_reason: str = ""

    @property
    def simulated_minutes(self) -> float:
        return self.simulated_seconds / 60.0

    @property
    def moved_fraction_of_bytes(self) -> float:
        """Bytes shipped relative to bytes scanned at the source (diagnostic)."""
        if self.bytes_scanned == 0:
            return 0.0
        return self.bytes_shipped / self.bytes_scanned

    def summary(self) -> str:
        outcome = "committed" if self.committed else f"aborted ({self.abort_reason})"
        return (
            f"rebalance[{self.strategy}] {self.dataset!r} {self.old_nodes}->{self.new_nodes} nodes "
            f"{outcome} in {fmt_duration(self.simulated_seconds)}: "
            f"{self.buckets_moved} buckets, {self.records_moved} records, "
            f"{fmt_bytes(self.bytes_shipped)} shipped"
        )


@dataclass
class ClusterRebalanceReport:
    """Aggregate of rebalancing every dataset to a new cluster size."""

    strategy: str
    old_nodes: int
    new_nodes: int
    simulated_seconds: float
    dataset_reports: List[RebalanceReport] = field(default_factory=list)

    @property
    def simulated_minutes(self) -> float:
        return self.simulated_seconds / 60.0

    @property
    def committed(self) -> bool:
        return all(report.committed for report in self.dataset_reports)

    @property
    def total_records_moved(self) -> int:
        return sum(report.records_moved for report in self.dataset_reports)

    @property
    def total_bytes_shipped(self) -> int:
        return sum(report.bytes_shipped for report in self.dataset_reports)

    def summary(self) -> str:
        return (
            f"cluster rebalance[{self.strategy}] {self.old_nodes}->{self.new_nodes} nodes in "
            f"{fmt_duration(self.simulated_seconds)} "
            f"({self.total_records_moved} records, {fmt_bytes(self.total_bytes_shipped)} shipped)"
        )
