"""The Cluster Controller and the top-level simulated cluster.

:class:`SimulatedCluster` is the public facade of the reproduction: it plays
the role of an AsterixDB cluster (one CC, N NCs with 4 partitions each) and
exposes dataset creation, feed ingestion, lookups/scans for the query engine,
and cluster resizing (which delegates to a rebalancing strategy from
:mod:`repro.rebalance.strategies`).

The CC state mirrors Section II-C / V: per-dataset metadata, the global
directory of every bucketed dataset, and the metadata WAL whose forced
BEGIN/COMMIT/DONE records drive rebalance recovery.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Generator, List, Mapping, Optional, Sequence

from ..common.clock import LamportClock
from ..common.config import BucketingConfig, ClusterConfig
from ..common.events import EventBus
from ..common.errors import (
    ClusterError,
    ConfigError,
    DatasetExistsError,
    UnknownDatasetError,
    UnknownNodeError,
)
from ..common.hashutil import hash_key
from ..hashing.bucket_id import ROOT_BUCKET, BucketId
from ..hashing.extendible import GlobalDirectory
from ..lsm.wal import WriteAheadLog
from .cost_model import CostModel
from .dataset import DatasetSpec, SecondaryIndexSpec
from .feed import DataFeed, RoutingSnapshot
from .reports import ClusterRebalanceReport
from .node import NodeController
from .partition import StoragePartition


@dataclass
class DatasetRuntime:
    """The CC's live state for one dataset."""

    spec: DatasetSpec
    #: "directory" (StaticHash / DynaHash) or "modulo" (the Hashing baseline).
    routing_mode: str
    bucketing: BucketingConfig
    #: bucket -> partition map; None for modulo routing.
    global_directory: Optional[GlobalDirectory] = None
    #: partition id -> partition object (the single source of truth).
    partitions: Dict[int, StoragePartition] = field(default_factory=dict)
    records_ingested: int = 0
    #: Set during rebalance finalization; feeds and queries check it.
    blocked: bool = False

    def routing_snapshot(self) -> RoutingSnapshot:
        """Immutable routing copy taken by feeds and queries (Section III)."""
        if self.routing_mode == "directory":
            return RoutingSnapshot("directory", directory=self.global_directory)
        return RoutingSnapshot("modulo", num_partitions=len(self.partitions))

    def partition_of_key(self, key: Any) -> int:
        """Route one key through the *live* directory.

        Point lookups route through the current state anyway, so unlike feeds
        and queries there is nothing to snapshot — going straight to the live
        directory skips the per-call directory copy a
        :meth:`routing_snapshot` would make (this is the hottest routing call
        in the simulator).
        """
        if self.routing_mode == "directory":
            return self.global_directory.partition_of_key(key)
        return hash_key(key) % len(self.partitions)

    @property
    def total_size_bytes(self) -> int:
        return sum(partition.size_bytes for partition in self.partitions.values())

    def record_count(self) -> int:
        return sum(partition.record_count() for partition in self.partitions.values())


class ClusterController:
    """CC-side metadata: dataset runtimes and the metadata log."""

    def __init__(self) -> None:
        self.metadata_wal = WriteAheadLog(owner="cc")
        self.lamport = LamportClock()
        self.datasets: Dict[str, DatasetRuntime] = {}

    def dataset(self, name: str) -> DatasetRuntime:
        try:
            return self.datasets[name]
        except KeyError:
            raise UnknownDatasetError(f"dataset {name!r} does not exist") from None

    def register_dataset(self, runtime: DatasetRuntime) -> None:
        if runtime.spec.name in self.datasets:
            raise DatasetExistsError(f"dataset {runtime.spec.name!r} already exists")
        self.datasets[runtime.spec.name] = runtime

    def drop_dataset(self, name: str) -> None:
        self.datasets.pop(name, None)


class SimulatedCluster:
    """An AsterixDB-style shared-nothing cluster, simulated.

    Parameters
    ----------
    config:
        Cluster topology, LSM, bucketing, and cost-model configuration.  When
        ``config.strategy`` names a registered strategy and no ``strategy``
        argument is given, that name is resolved through the strategy
        registry.
    strategy:
        A rebalancing strategy object (see :mod:`repro.rebalance.strategies`)
        or a registered strategy name (``"dynahash"``, ``"static"``,
        ``"consistent"``, ``"hashing"``, ...) controlling both the initial
        dataset layout and how the cluster rebalances when it is resized.
        ``None`` defaults to DynaHash-style directory routing; resizing then
        requires passing a strategy later via :attr:`strategy`.
    workload_scale:
        Multiplier applied to all work quantities by the cost model, letting
        small benchmark datasets report paper-scale simulated durations.
    """

    def __init__(
        self,
        config: Optional[ClusterConfig] = None,
        strategy: Optional[object] = None,
        workload_scale: float = 1.0,
    ) -> None:
        self.config = config or ClusterConfig()
        if strategy is None and self.config.strategy is not None:
            strategy = self.config.strategy
        if isinstance(strategy, str):
            from ..rebalance.strategies import strategy_by_name

            strategy = strategy_by_name(strategy)
        self.strategy = strategy
        self.events = EventBus()
        #: Optional per-bucket heat sink (a ``repro.trace.BucketHeat``),
        #: installed by a :class:`~repro.trace.TimelineRecorder` while a
        #: tracing session is attached.  Hot paths guard every use with a
        #: single ``is not None`` probe, the heat counterpart of
        #: ``EventBus.has_subscribers`` — untraced runs pay one attribute
        #: load per verb.  Typed loosely because the trace layer sits above
        #: this package.
        self.heat: Optional[Any] = None
        #: Optional fault-injection engine (a ``repro.chaos.ChaosEngine``),
        #: installed by :meth:`repro.api.Database.enable_chaos` when a
        #: scenario declares a ``[chaos]`` section.  Same pay-for-use bargain
        #: as :attr:`heat`: hot paths probe ``is not None`` once, so runs
        #: without chaos stay bit-identical to builds that predate it.
        self.chaos: Optional[Any] = None
        self.cost = CostModel(self.config.cost, workload_scale=workload_scale)
        self.cc = ClusterController()
        self.nodes: List[NodeController] = []
        self._next_rebalance_id = 1
        for _ in range(self.config.num_nodes):
            self._append_node()

    # ------------------------------------------------------------- topology

    @property
    def partitions_per_node(self) -> int:
        return self.config.partitions_per_node

    @property
    def num_nodes(self) -> int:
        return len(self.nodes)

    @property
    def total_partitions(self) -> int:
        return self.num_nodes * self.partitions_per_node

    def partition_ids(self) -> List[int]:
        return [pid for node in self.nodes for pid in node.partition_ids]

    def node_of_partition(self, partition_id: int) -> NodeController:
        index = partition_id // self.partitions_per_node
        if index >= len(self.nodes):
            raise UnknownNodeError(f"partition {partition_id} belongs to no current node")
        return self.nodes[index]

    def node(self, node_id: str) -> NodeController:
        for node in self.nodes:
            if node.node_id == node_id:
                return node
        raise UnknownNodeError(f"unknown node {node_id!r}")

    def _append_node(self) -> NodeController:
        index = len(self.nodes)
        ppn = self.partitions_per_node
        node = NodeController(
            node_id=f"nc{index}",
            partition_ids=list(range(index * ppn, (index + 1) * ppn)),
        )
        self.nodes.append(node)
        return node

    # The two methods below are used by rebalancing strategies: nodes are
    # provisioned *before* data moves onto them and decommissioned *after*
    # data has moved away.

    def provision_nodes(self, target_nodes: int) -> List[NodeController]:
        """Add nodes (with empty dataset partitions) up to ``target_nodes``."""
        if target_nodes < self.num_nodes:
            raise ClusterError("provision_nodes cannot shrink the cluster")
        new_nodes = []
        while self.num_nodes < target_nodes:
            node = self._append_node()
            new_nodes.append(node)
            for runtime in self.cc.datasets.values():
                for pid in node.partition_ids:
                    partition = self._make_partition(runtime, pid, node, initial_buckets=[])
                    runtime.partitions[pid] = partition
                    node.add_partition(partition)
            self.events.emit("node.provision", node=node.node_id, nodes=self.num_nodes)
        return new_nodes

    def decommission_nodes(self, target_nodes: int) -> List[NodeController]:
        """Remove the highest-numbered nodes down to ``target_nodes``.

        The caller (a rebalancing strategy) must already have moved all data
        off the removed nodes; any partitions still holding data trigger an
        error so bugs do not silently drop records.
        """
        if target_nodes > self.num_nodes:
            raise ClusterError("decommission_nodes cannot grow the cluster")
        if target_nodes < 1:
            raise ClusterError("cannot decommission every node")
        removed = []
        while self.num_nodes > target_nodes:
            node = self.nodes.pop()
            removed.append(node)
            for runtime in self.cc.datasets.values():
                for pid in node.partition_ids:
                    partition = runtime.partitions.pop(pid, None)
                    if partition is not None and partition.record_count() > 0:
                        raise ClusterError(
                            f"partition {pid} on {node.node_id} still holds "
                            f"{partition.record_count()} records; move them before decommissioning"
                        )
                node.drop_dataset(runtime.spec.name)
            self.events.emit("node.decommission", node=node.node_id, nodes=self.num_nodes)
        return removed

    # -------------------------------------------------------------- datasets

    def _resolve_bucketing(self) -> BucketingConfig:
        if self.strategy is not None and hasattr(self.strategy, "bucketing_config"):
            return self.strategy.bucketing_config(self.config.bucketing, self.total_partitions)
        return self.config.bucketing

    def _resolve_routing_mode(self) -> str:
        if self.strategy is not None and hasattr(self.strategy, "routing_mode"):
            return self.strategy.routing_mode
        return "directory"

    def _initial_directory(self, bucketing: BucketingConfig) -> GlobalDirectory:
        if self.strategy is not None and hasattr(self.strategy, "initial_directory"):
            return self.strategy.initial_directory(self.total_partitions, bucketing)
        return GlobalDirectory.initial(
            self.total_partitions, bucketing.initial_buckets_per_partition
        )

    def _make_partition(
        self,
        runtime: DatasetRuntime,
        partition_id: int,
        node: NodeController,
        initial_buckets: Sequence[BucketId],
    ) -> StoragePartition:
        return StoragePartition(
            dataset=runtime.spec,
            partition_id=partition_id,
            node_id=node.node_id,
            initial_buckets=initial_buckets,
            lsm_config=self.config.lsm,
            bucketing_config=runtime.bucketing,
            wal=node.wal,
        )

    def create_dataset(
        self,
        name: str,
        primary_key: "str | Sequence[str]",
        secondary_indexes: Sequence[SecondaryIndexSpec] = (),
    ) -> DatasetRuntime:
        """Create a dataset partitioned across every current node."""
        spec = DatasetSpec.create(name, primary_key, secondary_indexes)
        return self.create_dataset_from_spec(spec)

    def create_dataset_from_spec(self, spec: DatasetSpec) -> DatasetRuntime:
        routing_mode = self._resolve_routing_mode()
        bucketing = self._resolve_bucketing()
        runtime = DatasetRuntime(spec=spec, routing_mode=routing_mode, bucketing=bucketing)
        if routing_mode == "directory":
            runtime.global_directory = self._initial_directory(bucketing)
        for node in self.nodes:
            for pid in node.partition_ids:
                if routing_mode == "directory":
                    initial = runtime.global_directory.buckets_of_partition(pid)
                else:
                    initial = [ROOT_BUCKET]
                partition = self._make_partition(runtime, pid, node, initial)
                runtime.partitions[pid] = partition
                node.add_partition(partition)
        self.cc.register_dataset(runtime)
        self.events.emit(
            "dataset.create",
            dataset=spec.name,
            routing=routing_mode,
            partitions=len(runtime.partitions),
        )
        return runtime

    def dataset(self, name: str) -> DatasetRuntime:
        return self.cc.dataset(name)

    def dataset_names(self) -> List[str]:
        return sorted(self.cc.datasets.keys())

    def drop_dataset(self, name: str) -> None:
        runtime = self.cc.dataset(name)
        for node in self.nodes:
            node.drop_dataset(name)
        runtime.partitions.clear()
        self.cc.drop_dataset(name)
        self.events.emit("dataset.drop", dataset=name)

    # ------------------------------------------------------------- ingestion

    def feed(self, dataset_name: str, batch_size: int = 2000) -> DataFeed:
        """Open a data feed against the dataset's current routing state."""
        return DataFeed(self, dataset_name, batch_size=batch_size)

    # ------------------------------------------------------------ read paths

    def point_lookup(self, dataset_name: str, key: Any) -> Optional[Dict[str, Any]]:
        """Point lookup by primary key (routes via the current directory).

        Client code should prefer the :mod:`repro.api` handles
        (``db.dataset(name).get(key)``); this is the internal routing path
        they share with the query executor.  The deprecated ``ingest`` /
        ``lookup`` shims were removed in 1.3 — use ``Dataset.insert`` /
        ``Dataset.get``.
        """
        runtime = self.dataset(dataset_name)
        partition_id = runtime.partition_of_key(key)
        return runtime.partitions[partition_id].lookup(key)

    def partitions_by_node(self, dataset_name: str) -> Dict[str, List[StoragePartition]]:
        """Dataset partitions grouped by node (what the query executor runs over)."""
        runtime = self.dataset(dataset_name)
        grouped: Dict[str, List[StoragePartition]] = {}
        for pid in sorted(runtime.partitions):
            node = self.node_of_partition(pid)
            grouped.setdefault(node.node_id, []).append(runtime.partitions[pid])
        return grouped

    def record_count(self, dataset_name: str) -> int:
        return self.dataset(dataset_name).record_count()

    # ------------------------------------------------------------- rebalance

    def next_rebalance_id(self) -> int:
        rid = self._next_rebalance_id
        self._next_rebalance_id += 1
        return rid

    def rebalance_to(
        self,
        target_nodes: int,
        concurrent_rows: Optional[Mapping[str, Any]] = None,
        fault_injector: Optional[object] = None,
    ) -> "ClusterRebalanceReport":
        """Resize the cluster to ``target_nodes`` using the configured strategy."""
        if target_nodes < 1:
            raise ConfigError("target_nodes must be at least 1")
        if self.strategy is None:
            raise ClusterError(
                "no rebalancing strategy configured; pass one to SimulatedCluster(strategy=...)"
            )
        self.events.emit(
            "rebalance.start",
            strategy=getattr(self.strategy, "name", type(self.strategy).__name__),
            old_nodes=self.num_nodes,
            target_nodes=target_nodes,
        )
        try:
            report = self.strategy.rebalance_cluster(
                self,
                target_nodes,
                concurrent_rows=concurrent_rows,
                fault_injector=fault_injector,
            )
        except Exception as error:
            self.events.emit(
                "rebalance.error", target_nodes=target_nodes, error=repr(error)
            )
            raise
        self.events.emit(
            "rebalance.complete",
            strategy=report.strategy,
            old_nodes=report.old_nodes,
            new_nodes=report.new_nodes,
            committed=report.committed,
            report=report,
        )
        return report

    def rebalance_to_steps(
        self,
        target_nodes: int,
        concurrent_rows: Optional[Mapping[str, Any]] = None,
        fault_injector: Optional[object] = None,
    ) -> "Generator[Any, None, ClusterRebalanceReport]":
        """Generator twin of :meth:`rebalance_to` for the event scheduler.

        Emits the same ``rebalance.start`` / ``rebalance.error`` /
        ``rebalance.complete`` events; between them it yields every
        :class:`~repro.sim.SimSegment` the strategy produces, so the consuming
        actor can interleave foreground work inside the movement windows.
        """
        if target_nodes < 1:
            raise ConfigError("target_nodes must be at least 1")
        if self.strategy is None:
            raise ClusterError(
                "no rebalancing strategy configured; pass one to SimulatedCluster(strategy=...)"
            )
        self.events.emit(
            "rebalance.start",
            strategy=getattr(self.strategy, "name", type(self.strategy).__name__),
            old_nodes=self.num_nodes,
            target_nodes=target_nodes,
        )
        try:
            report = yield from self.strategy.rebalance_cluster_steps(
                self,
                target_nodes,
                concurrent_rows=concurrent_rows,
                fault_injector=fault_injector,
            )
        except Exception as error:
            self.events.emit(
                "rebalance.error", target_nodes=target_nodes, error=repr(error)
            )
            raise
        self.events.emit(
            "rebalance.complete",
            strategy=report.strategy,
            old_nodes=report.old_nodes,
            new_nodes=report.new_nodes,
            committed=report.committed,
            report=report,
        )
        return report

    def add_nodes(self, count: int = 1) -> "ClusterRebalanceReport":
        """Scale out by ``count`` nodes (provisions, then rebalances onto them)."""
        return self.rebalance_to(self.num_nodes + count)

    def remove_nodes(self, count: int = 1) -> "ClusterRebalanceReport":
        """Scale in by ``count`` nodes (rebalances away, then decommissions)."""
        return self.rebalance_to(self.num_nodes - count)

    # -------------------------------------------------------------- reporting

    def storage_per_node(self) -> Dict[str, int]:
        return {node.node_id: node.total_size_bytes() for node in self.nodes}

    def describe(self) -> Dict[str, Any]:
        """A structural snapshot used by examples and documentation."""
        return {
            "nodes": self.num_nodes,
            "partitions": self.total_partitions,
            "datasets": {
                name: {
                    "records": runtime.record_count(),
                    "routing": runtime.routing_mode,
                    "buckets": (
                        len(runtime.global_directory)
                        if runtime.global_directory is not None
                        else None
                    ),
                    "bytes": runtime.total_size_bytes,
                }
                for name, runtime in self.cc.datasets.items()
            },
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"SimulatedCluster(nodes={self.num_nodes}, partitions={self.total_partitions}, "
            f"datasets={self.dataset_names()})"
        )
