"""Data feeds: long-running ingestion jobs.

AsterixDB ingests external data through *data feeds* (Section II-C).  A feed
takes an immutable copy of the dataset's partitioning state when it starts and
uses it to route every incoming record to its NC partition; maintenance
(flushes, merges, bucket splits) runs as the data arrives.

The feed also computes the simulated ingestion time: per-partition storage
work plus the CPU-heavy record parsing, rolled up per node (partitions on the
same node work in parallel; the node's network link is shared) and then across
nodes with slowest-node semantics.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple

from ..common.hashutil import hash_key
from ..lsm.entry import estimate_value_size
from .cost_model import CostModel
from .reports import IngestReport


class DataFeed:
    """Routes and ingests records for one dataset."""

    def __init__(self, cluster: "SimulatedCluster", dataset_name: str, batch_size: int = 2000) -> None:
        if batch_size < 1:
            raise ValueError("batch_size must be at least 1")
        self.cluster = cluster
        self.dataset_name = dataset_name
        self.batch_size = batch_size
        self.runtime = cluster.dataset(dataset_name)
        # The feed works off an immutable snapshot of the routing state; a
        # concurrent rebalance swaps the live directory, not this copy.
        self.routing = self.runtime.routing_snapshot()

    # ---------------------------------------------------------------- routing

    def route(self, record: Mapping[str, Any]) -> int:
        """Partition id that should store ``record``."""
        key = self.runtime.spec.primary_key_of(record)
        return self.routing.partition_of(key)

    # ----------------------------------------------------------------- ingest

    def ingest(self, rows: Iterable[Mapping[str, Any]], maintain: bool = True) -> IngestReport:
        """Ingest ``rows`` and return an :class:`IngestReport`.

        Rows are routed in arrival order but landed **grouped by target
        partition**, one batch at a time: primary keys are extracted once
        (shared by routing and insertion), each partition receives its slice
        of the batch through :meth:`StoragePartition.insert_many`, and the
        maintenance pass still runs on the same every-``batch_size``-rows
        boundaries.  Per-partition insertion order is preserved, so the
        resulting storage state — and therefore the simulated cost — is
        identical to the old row-at-a-time loop.

        ``maintain=False`` skips flush/merge/split scheduling, which some unit
        tests use to control storage state precisely.
        """
        events = self.cluster.events
        if events.has_subscribers("ingest.start"):
            events.emit("ingest.start", dataset=self.dataset_name)
        cost: CostModel = self.cluster.cost
        partitions = self.runtime.partitions
        stats_before = {pid: p.stats_snapshot() for pid, p in partitions.items()}
        splits_before = {
            pid: len(p.primary.split_history) for pid, p in partitions.items()
        }
        records_per_partition: Dict[int, int] = {pid: 0 for pid in partitions}
        bytes_per_partition: Dict[int, int] = {pid: 0 for pid in partitions}
        total_records = 0
        total_bytes = 0
        batch_count = 0

        primary_key_of = self.runtime.spec.primary_key_of
        partition_of_hash = self.routing.partition_of_hash
        batch_size = self.batch_size
        heat = self.cluster.heat
        dataset_name = self.dataset_name
        #: The current batch, grouped by target partition (insertion order
        #: within each partition follows arrival order).
        grouped: Dict[int, List[Tuple[Any, int, Mapping[str, Any]]]] = {}

        def land_batch() -> None:
            for pid, routed_rows in grouped.items():
                partitions[pid].insert_many(routed_rows)
            grouped.clear()

        for row in rows:
            key = primary_key_of(row)
            hashed = hash_key(key)
            pid = partition_of_hash(hashed)
            if heat is not None:
                heat.record_write(dataset_name, hashed)
            group = grouped.get(pid)
            if group is None:
                group = grouped[pid] = []
            group.append((key, hashed, row))
            row_bytes = estimate_value_size(row if type(row) is dict else dict(row))
            records_per_partition[pid] += 1
            bytes_per_partition[pid] += row_bytes
            total_records += 1
            total_bytes += row_bytes
            batch_count += 1
            if batch_count >= batch_size:
                batch_count = 0
                land_batch()
                if maintain:
                    for partition in partitions.values():
                        partition.maintain()
        land_batch()
        if maintain:
            for partition in partitions.values():
                partition.maintain()

        # ------------------------------------------------ cost roll-up
        per_partition_seconds: Dict[int, float] = {}
        flush_bytes = 0
        merge_bytes = 0
        for pid, partition in partitions.items():
            delta = partition.stats_snapshot().diff(stats_before[pid])
            flush_bytes += delta.bytes_flushed
            merge_bytes += delta.bytes_merged_written
            breakdown = cost.ingest_work(records_per_partition[pid], delta)
            per_partition_seconds[pid] = breakdown.total_sec

        per_node_seconds: Dict[str, float] = {}
        for node in self.cluster.nodes:
            node_partition_ids = [
                pid for pid in partitions if self.cluster.node_of_partition(pid) is node
            ]
            if not node_partition_ids:
                continue
            busiest_partition = max(per_partition_seconds[pid] for pid in node_partition_ids)
            node_bytes = sum(bytes_per_partition[pid] for pid in node_partition_ids)
            per_node_seconds[node.node_id] = busiest_partition + cost.network_time(node_bytes)

        splits = sum(
            len(partitions[pid].primary.split_history) - splits_before[pid]
            for pid in partitions
        )
        chaos = self.cluster.chaos
        if chaos is not None:
            per_node_seconds = dict(chaos.scale_node_seconds(per_node_seconds))
        simulated_seconds = cost.slowest(per_node_seconds) + cost.rpc_time(2)
        if chaos is not None:
            # Backpressure stretches the feed itself; a client burst contends
            # for the same links, so both distortions land on the ingest time.
            simulated_seconds *= chaos.ingest_factor() * chaos.client_factor()
        report = IngestReport(
            dataset=self.dataset_name,
            records=total_records,
            bytes_ingested=total_bytes,
            simulated_seconds=simulated_seconds,
            per_node_seconds=per_node_seconds,
            per_partition_records=records_per_partition,
            splits=splits,
            flush_bytes=flush_bytes,
            merge_bytes=merge_bytes,
        )
        self.runtime.records_ingested += total_records
        self.cluster.events.emit(
            "ingest.complete",
            dataset=self.dataset_name,
            records=total_records,
            splits=splits,
            report=report,
        )
        return report


class RoutingSnapshot:
    """An immutable routing function captured when a feed or query starts."""

    def __init__(self, mode: str, directory: Optional[Any] = None, num_partitions: int = 0) -> None:
        if mode not in ("directory", "modulo"):
            raise ValueError(f"unknown routing mode {mode!r}")
        if mode == "directory" and directory is None:
            raise ValueError("directory routing needs a directory")
        if mode == "modulo" and num_partitions < 1:
            raise ValueError("modulo routing needs a positive partition count")
        self.mode = mode
        self.directory = directory.copy() if directory is not None else None
        self.num_partitions = num_partitions

    def partition_of(self, key: Any) -> int:
        return self.partition_of_hash(hash_key(key))

    def partition_of_hash(self, hashed: int) -> int:
        """Route an already-hashed key (the feed hashes once per row and
        shares the hash with the storage layer)."""
        if self.mode == "directory":
            return self.directory.lookup_hash(hashed)[1]
        return hashed % self.num_partitions

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        if self.mode == "directory":
            return f"RoutingSnapshot(directory, buckets={len(self.directory)})"
        return f"RoutingSnapshot(modulo, partitions={self.num_partitions})"
