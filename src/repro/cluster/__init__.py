"""The AsterixDB-style shared-nothing cluster simulator.

* :class:`SimulatedCluster` — the public facade: one CC, N NCs with several
  storage partitions each, dataset creation, feed ingestion, lookups, and
  strategy-driven rebalancing.
* :class:`StoragePartition` — one dataset partition (bucketed primary index,
  primary-key index, secondary indexes, WAL) including the NC-side rebalance
  mechanics.
* :class:`CostModel` — converts physical work into simulated seconds with
  slowest-node semantics.
* :class:`DataFeed` — AsterixDB-style ingestion jobs with an immutable routing
  snapshot.
"""

from .controller import ClusterController, DatasetRuntime, SimulatedCluster
from .cost_model import CostModel, TimedPhase, WorkBreakdown
from .dataset import DatasetSpec, SecondaryIndexSpec
from .feed import DataFeed, RoutingSnapshot
from .node import NodeController
from .partition import PendingReceivedBucket, StoragePartition
from .reports import ClusterRebalanceReport, IngestReport, QueryReport, RebalanceReport

__all__ = [
    "ClusterController",
    "ClusterRebalanceReport",
    "CostModel",
    "DataFeed",
    "DatasetRuntime",
    "DatasetSpec",
    "IngestReport",
    "NodeController",
    "PendingReceivedBucket",
    "QueryReport",
    "RebalanceReport",
    "RoutingSnapshot",
    "SecondaryIndexSpec",
    "SimulatedCluster",
    "StoragePartition",
    "TimedPhase",
    "WorkBreakdown",
]
