"""Static bucketing (the paper's ``StaticHash`` variant and Section II-A).

Static bucketing pre-partitions the hash space into a fixed number of buckets
(the paper's StaticHash uses 256, Couchbase uses 1024, Oracle NoSQL recommends
10–20 per node of the largest expected cluster).  The buckets never split;
rebalancing moves whole buckets between partitions.

Because our bucket identities are extendible-hash prefixes, a static layout
with ``2^k`` buckets is simply "every bucket has depth ``k``"; this lets the
StaticHash variant reuse the entire DynaHash machinery with splitting turned
off, exactly as the paper's implementation does ("bucket splitting was
disabled during rebalancing... they had the same initial number of buckets").
"""

from __future__ import annotations

from typing import Dict, List

from ..common.errors import ConfigError
from .bucket_id import BucketId
from .extendible import GlobalDirectory


def static_bucket_depth(total_buckets: int) -> int:
    """Depth needed for ``total_buckets`` static buckets (must be a power of 2)."""
    if total_buckets < 1:
        raise ConfigError("total_buckets must be at least 1")
    depth = (total_buckets - 1).bit_length()
    if 1 << depth != total_buckets:
        raise ConfigError(
            f"static bucket count must be a power of two, got {total_buckets}"
        )
    return depth


def static_buckets(total_buckets: int) -> List[BucketId]:
    """The full list of bucket ids for a static layout."""
    depth = static_bucket_depth(total_buckets)
    return [BucketId(prefix, depth) for prefix in range(total_buckets)]


def static_directory(total_buckets: int, num_partitions: int) -> GlobalDirectory:
    """Build the initial global directory for StaticHash.

    Buckets are assigned round-robin to partitions, which is also how the
    paper's StaticHash distributes its 256 buckets (32 per partition at 2
    nodes / 8 partitions, down to 4 per partition at 16 nodes / 64
    partitions).
    """
    if num_partitions < 1:
        raise ConfigError("num_partitions must be at least 1")
    buckets = static_buckets(total_buckets)
    if total_buckets < num_partitions:
        raise ConfigError(
            f"{total_buckets} static buckets cannot cover {num_partitions} partitions; "
            "increase the bucket count"
        )
    assignments: Dict[BucketId, int] = {
        bucket: index % num_partitions for index, bucket in enumerate(buckets)
    }
    return GlobalDirectory(assignments)


def buckets_per_partition(total_buckets: int, num_partitions: int) -> Dict[int, int]:
    """How many buckets each partition receives under round-robin assignment."""
    directory = static_directory(total_buckets, num_partitions)
    return {
        partition: len(directory.buckets_of_partition(partition))
        for partition in range(num_partitions)
    }
