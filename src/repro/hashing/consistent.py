"""Consistent hashing with virtual nodes.

The paper classifies consistent hashing as the third local rebalancing scheme
(Section II-A): the hashed key space is a ring, each (virtual) node serves the
arc between its predecessor and itself, and adding/removing a node only moves
the keys of the affected arcs.  DynaHash prefers dynamic bucketing because
AsterixDB has a primary-secondary architecture, but the ring is implemented
here as a comparison baseline for the rebalance-cost ablations and to make the
Section II-A taxonomy executable.
"""

from __future__ import annotations

import bisect
from typing import Any, Dict, List

from ..common.errors import ClusterError
from ..common.hashutil import hash64, hash_key


class ConsistentHashRing:
    """A hash ring mapping keys to node ids, with virtual nodes (Cassandra-style)."""

    def __init__(self, virtual_nodes: int = 64) -> None:
        if virtual_nodes < 1:
            raise ValueError("virtual_nodes must be at least 1")
        self.virtual_nodes = virtual_nodes
        #: Sorted ring positions and the parallel list of owning node ids.
        self._positions: List[int] = []
        self._owners: List[Any] = []
        self._nodes: Dict[Any, List[int]] = {}

    # ------------------------------------------------------------- topology

    def _token(self, node_id: Any, replica: int) -> int:
        return hash64(hash_key((str(node_id), replica)))

    def add_node(self, node_id: Any) -> None:
        """Add a node (and its virtual nodes) to the ring."""
        if node_id in self._nodes:
            raise ClusterError(f"node {node_id!r} is already on the ring")
        tokens = []
        for replica in range(self.virtual_nodes):
            token = self._token(node_id, replica)
            index = bisect.bisect_left(self._positions, token)
            self._positions.insert(index, token)
            self._owners.insert(index, node_id)
            tokens.append(token)
        self._nodes[node_id] = tokens

    def remove_node(self, node_id: Any) -> None:
        """Remove a node and all its virtual nodes."""
        if node_id not in self._nodes:
            raise ClusterError(f"node {node_id!r} is not on the ring")
        del self._nodes[node_id]
        keep_positions: List[int] = []
        keep_owners: List[Any] = []
        for position, owner in zip(self._positions, self._owners, strict=True):
            if owner != node_id:
                keep_positions.append(position)
                keep_owners.append(owner)
        self._positions = keep_positions
        self._owners = keep_owners

    @property
    def nodes(self) -> List[Any]:
        return sorted(self._nodes.keys(), key=str)

    def __len__(self) -> int:
        return len(self._nodes)

    # -------------------------------------------------------------- routing

    def node_for_key(self, key: Any) -> Any:
        """Return the node owning ``key`` (the first token clockwise)."""
        if not self._positions:
            raise ClusterError("the ring has no nodes")
        token = hash_key(key)
        index = bisect.bisect_right(self._positions, token)
        if index == len(self._positions):
            index = 0
        return self._owners[index]

    def node_for_hash(self, hash_value: int) -> Any:
        if not self._positions:
            raise ClusterError("the ring has no nodes")
        index = bisect.bisect_right(self._positions, hash_value)
        if index == len(self._positions):
            index = 0
        return self._owners[index]

    # ------------------------------------------------------------- analysis

    def ownership_fractions(self, samples: int = 4096) -> Dict[Any, float]:
        """Approximate fraction of the hash space owned by each node.

        Computed exactly from arc lengths rather than by sampling; ``samples``
        is kept for API compatibility with earlier prototypes and ignored.
        """
        if not self._positions:
            return {}
        total = float(1 << 64)
        fractions: Dict[Any, float] = {node: 0.0 for node in self._nodes}
        previous = self._positions[-1]
        for position, owner in zip(self._positions, self._owners, strict=True):
            arc = (position - previous) % (1 << 64)
            fractions[owner] += arc / total
            previous = position
        return fractions

    def moved_fraction(self, other: "ConsistentHashRing", probes: int = 2000) -> float:
        """Fraction of probe keys whose owner differs between two rings.

        Measures the rebalance data-movement cost of a topology change: for a
        ring of N nodes losing one node, roughly 1/N of the keys move.
        """
        if probes < 1:
            raise ValueError("probes must be positive")
        moved = 0
        for probe in range(probes):
            key = ("__probe__", probe)
            if self.node_for_key(key) != other.node_for_key(key):
                moved += 1
        return moved / probes

    def copy(self) -> "ConsistentHashRing":
        clone = ConsistentHashRing(self.virtual_nodes)
        for node in self._nodes:
            clone.add_node(node)
        return clone

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"ConsistentHashRing(nodes={len(self._nodes)}, vnodes={self.virtual_nodes})"
