"""Extendible-hash directories.

Two directory kinds exist in DynaHash (Section III, Figure 1):

* The **global directory** lives at the Cluster Controller and maps every
  hash prefix of length ``D`` (the *global depth*) to the storage partition
  holding that bucket.  Queries and data feeds each take an immutable copy of
  it for routing.  It is refreshed *lazily*: bucket splits at the NCs do not
  update it (they do not need to — routing stays correct because a split
  keeps both children on the same partition); it is only recomputed when a
  rebalance operation starts.
* A **local directory** lives at each partition and tracks exactly the
  buckets that partition owns; it is the authority on bucket boundaries.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple

from ..common.errors import DirectoryError
from ..common.hashutil import hash_key
from .bucket_id import BucketId, ROOT_BUCKET, covers_exactly


class GlobalDirectory:
    """The CC's bucket → partition map.

    The directory stores an explicit assignment per bucket; slot expansion to
    ``2^D`` entries (as drawn in Figure 1) is derived on demand via
    :meth:`slots` so that doubling the depth never copies data.
    """

    def __init__(self, assignments: Optional[Mapping[BucketId, int]] = None) -> None:
        self._assignments: Dict[BucketId, int] = dict(assignments or {})
        #: Lazily built hash-routing table: slot ``low_bits(h, D)`` ->
        #: ``(bucket, partition)``.  Invalidated by :meth:`reassign`; rebuilt
        #: on the next lookup.  Makes :meth:`lookup_hash` O(1) instead of a
        #: linear scan over every bucket (it sits under every point lookup
        #: and every routed ingest row).
        self._slot_route: Optional[List[Tuple[BucketId, int]]] = None
        self._slot_depth = 0
        if self._assignments:
            self._validate()

    # ---------------------------------------------------------------- basics

    @classmethod
    def initial(cls, num_partitions: int, buckets_per_partition: int = 1) -> "GlobalDirectory":
        """Build the directory used when a dataset is first created.

        The hash space is divided evenly: with ``P`` partitions and ``k``
        buckets per partition the initial depth is ``ceil(log2(P * k))``.
        Partitions are assigned round-robin over the bucket prefixes, which
        gives each partition exactly ``k`` buckets when ``P * k`` is a power
        of two and an off-by-one spread otherwise (matching how AsterixDB
        splits a non-power-of-two cluster).
        """
        if num_partitions < 1:
            raise DirectoryError("need at least one partition")
        if buckets_per_partition < 1:
            raise DirectoryError("need at least one bucket per partition")
        total = num_partitions * buckets_per_partition
        depth = max(1, (total - 1).bit_length())
        assignments: Dict[BucketId, int] = {}
        for prefix in range(1 << depth):
            assignments[BucketId(prefix, depth)] = prefix % num_partitions
        return cls(assignments)

    @classmethod
    def single_bucket(cls, partition: int = 0) -> "GlobalDirectory":
        """A directory with one root bucket on one partition (tiny datasets)."""
        return cls({ROOT_BUCKET: partition})

    def _validate(self) -> None:
        if not covers_exactly(self._assignments.keys()):
            raise DirectoryError("global directory buckets do not tile the hash space")

    # ---------------------------------------------------------------- queries

    @property
    def global_depth(self) -> int:
        """The maximum bucket depth D; the directory has 2^D slots."""
        if not self._assignments:
            return 0
        return max(bucket.depth for bucket in self._assignments)

    @property
    def buckets(self) -> List[BucketId]:
        return sorted(self._assignments.keys())

    @property
    def assignments(self) -> Dict[BucketId, int]:
        return dict(self._assignments)

    def partitions(self) -> List[int]:
        """All partition ids that own at least one bucket."""
        return sorted(set(self._assignments.values()))

    def partition_of_bucket(self, bucket: BucketId) -> int:
        try:
            return self._assignments[bucket]
        except KeyError:
            raise DirectoryError(f"bucket {bucket} is not in the global directory") from None

    def lookup_hash(self, hash_value: int) -> Tuple[BucketId, int]:
        """Route a hash value: return (bucket, partition)."""
        route = self._slot_route
        if route is None:
            route = self._build_slot_route()
        if route:
            return route[hash_value & ((1 << self._slot_depth) - 1)]
        # Fallback for directories too deep to table (never hit in practice).
        for bucket, partition in self._assignments.items():
            if bucket.contains_hash(hash_value):
                return bucket, partition
        raise DirectoryError(f"hash {hash_value:#x} matches no bucket; directory is corrupt")

    #: Directories deeper than this are routed by linear scan rather than a
    #: 2^D slot table (2^20 slots is the cap on table memory).
    _MAX_TABLE_DEPTH = 20

    def _build_slot_route(self) -> List[Tuple[BucketId, int]]:
        """Expand the assignments into the 2^D routing table (lazily)."""
        depth = self.global_depth
        if not self._assignments or depth > self._MAX_TABLE_DEPTH:
            self._slot_route = []
            self._slot_depth = 0
            return self._slot_route
        table: List[Optional[Tuple[BucketId, int]]] = [None] * (1 << depth)
        for bucket, partition in self._assignments.items():
            pair = (bucket, partition)
            step = 1 << bucket.depth
            for slot in range(bucket.prefix, 1 << depth, step):
                table[slot] = pair
        if any(pair is None for pair in table):  # pragma: no cover - defensive
            raise DirectoryError("global directory buckets do not tile the hash space")
        self._slot_route = table  # type: ignore[assignment]
        self._slot_depth = depth
        return self._slot_route

    def lookup_key(self, key: Any) -> Tuple[BucketId, int]:
        """Route a record key to its (bucket, partition)."""
        return self.lookup_hash(hash_key(key))

    def partition_of_key(self, key: Any) -> int:
        return self.lookup_key(key)[1]

    def buckets_of_partition(self, partition: int) -> List[BucketId]:
        return sorted(b for b, p in self._assignments.items() if p == partition)

    def slots(self) -> Dict[int, Tuple[BucketId, int]]:
        """Expand to the 2^D slot table of Figure 1 (for display/tests)."""
        depth = self.global_depth
        table: Dict[int, Tuple[BucketId, int]] = {}
        for bucket, partition in self._assignments.items():
            for slot in bucket.directory_slots(depth):
                table[slot] = (bucket, partition)
        return table

    def normalized_load(self) -> Dict[int, int]:
        """Per-partition sum of normalized bucket sizes (the paper's |P|)."""
        depth = self.global_depth
        load: Dict[int, int] = {}
        for bucket, partition in self._assignments.items():
            load[partition] = load.get(partition, 0) + bucket.normalized_size(depth)
        return load

    # -------------------------------------------------------------- mutation

    def copy(self) -> "GlobalDirectory":
        """An immutable-by-convention snapshot for queries and feeds.

        Skips re-validation (the source directory was validated when built)
        and shares the already-compiled slot-routing table: the table is
        replaced wholesale, never mutated, so a later ``reassign`` on either
        object cannot corrupt the other's routing.  Feeds take one copy per
        ingest call, so this sits on the write hot path.
        """
        clone = GlobalDirectory.__new__(GlobalDirectory)
        clone._assignments = dict(self._assignments)
        clone._slot_route = self._slot_route
        clone._slot_depth = self._slot_depth
        return clone

    def with_assignments(self, assignments: Mapping[BucketId, int]) -> "GlobalDirectory":
        """Return a new directory with a different bucket → partition map."""
        return GlobalDirectory(assignments)

    def reassign(self, bucket: BucketId, partition: int) -> None:
        """Move one bucket to a different partition (rebalance commit path)."""
        if bucket not in self._assignments:
            raise DirectoryError(f"bucket {bucket} is not in the global directory")
        self._assignments[bucket] = partition
        self._slot_route = None

    @classmethod
    def from_local_directories(
        cls, local_directories: Mapping[int, "LocalDirectory"]
    ) -> "GlobalDirectory":
        """Recompute the global directory from the NCs' local directories.

        This is the "Computing the Global Directory" step of the rebalance
        initialization phase: because bucket splits happen locally without
        notifying the CC, the CC must pull the latest local directories to
        learn the true bucket set.
        """
        assignments: Dict[BucketId, int] = {}
        for partition, local in local_directories.items():
            for bucket in local.buckets:
                if bucket in assignments:
                    raise DirectoryError(
                        f"bucket {bucket} is claimed by partitions "
                        f"{assignments[bucket]} and {partition}"
                    )
                assignments[bucket] = partition
        directory = cls(assignments)
        return directory

    def __len__(self) -> int:
        return len(self._assignments)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, GlobalDirectory):
            return NotImplemented
        return self._assignments == other._assignments

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"GlobalDirectory(depth={self.global_depth}, buckets={len(self)})"


class LocalDirectory:
    """The bucket set owned by one storage partition."""

    def __init__(self, partition_id: int, buckets: Optional[Iterable[BucketId]] = None) -> None:
        self.partition_id = partition_id
        self._buckets: Dict[BucketId, None] = {}
        #: Lazily built hash-routing table at the local max depth: slot ->
        #: bucket.  A local directory covers only this partition's slice of
        #: the hash space, so the table is sparse (a dict, not a list) and
        #: misses mean "not owned here".  Invalidated by every mutation.
        self._slot_route: Optional[Dict[int, BucketId]] = None
        self._slot_depth = 0
        for bucket in buckets or ():
            self.add_bucket(bucket)

    @property
    def buckets(self) -> List[BucketId]:
        return sorted(self._buckets.keys())

    def __len__(self) -> int:
        return len(self._buckets)

    def __contains__(self, bucket: BucketId) -> bool:
        return bucket in self._buckets

    @property
    def local_depth(self) -> int:
        """The maximum depth among this partition's buckets (0 if empty)."""
        if not self._buckets:
            return 0
        return max(bucket.depth for bucket in self._buckets)

    def add_bucket(self, bucket: BucketId) -> None:
        """Register a bucket; overlapping an existing bucket is an error."""
        for existing in self._buckets:
            if existing.overlaps(bucket):
                raise DirectoryError(
                    f"bucket {bucket} overlaps existing bucket {existing} "
                    f"on partition {self.partition_id}"
                )
        self._buckets[bucket] = None
        self._slot_route = None

    def remove_bucket(self, bucket: BucketId) -> None:
        """Drop a bucket (after it moved away); unknown buckets are a no-op
        so the rebalance cleanup stays idempotent."""
        self._buckets.pop(bucket, None)
        self._slot_route = None

    def split_bucket(self, bucket: BucketId) -> Tuple[BucketId, BucketId]:
        """Replace ``bucket`` with its two children and return them."""
        if bucket not in self._buckets:
            raise DirectoryError(f"bucket {bucket} is not on partition {self.partition_id}")
        low, high = bucket.split()
        del self._buckets[bucket]
        self._buckets[low] = None
        self._buckets[high] = None
        self._slot_route = None
        return low, high

    def bucket_for_hash(self, hash_value: int) -> BucketId:
        bucket = self.try_bucket_for_hash(hash_value)
        if bucket is None:
            raise DirectoryError(
                f"hash {hash_value:#x} belongs to no bucket of partition {self.partition_id}"
            )
        return bucket

    def try_bucket_for_hash(self, hash_value: int) -> Optional[BucketId]:
        """Like :meth:`bucket_for_hash` but returns ``None`` for unowned
        hashes — the point-lookup path treats "not my bucket" as a miss."""
        route = self._slot_route
        if route is None:
            route = self._build_slot_route()
        return route.get(hash_value & ((1 << self._slot_depth) - 1))

    def _build_slot_route(self) -> Dict[int, BucketId]:
        """Expand this partition's buckets into a sparse slot table (lazily)."""
        depth = self.local_depth
        route: Dict[int, BucketId] = {}
        for bucket in self._buckets:
            step = 1 << bucket.depth
            for slot in range(bucket.prefix, 1 << depth, step):
                route[slot] = bucket
        self._slot_route = route
        self._slot_depth = depth
        return route

    def bucket_for_key(self, key: Any) -> BucketId:
        return self.bucket_for_hash(hash_key(key))

    def owns_key(self, key: Any) -> bool:
        route = self._slot_route
        if route is None:
            route = self._build_slot_route()
        return (hash_key(key) & ((1 << self._slot_depth) - 1)) in route

    def copy(self) -> "LocalDirectory":
        return LocalDirectory(self.partition_id, self.buckets)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        labels = ",".join(str(b) for b in self.buckets)
        return f"LocalDirectory(p{self.partition_id}: [{labels}])"
