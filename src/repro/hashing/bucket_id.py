"""Bucket identities for extendible hashing.

A bucket is identified by ``(prefix, depth)``: it contains every key whose
hash has ``prefix`` as its ``depth`` low-order bits (Section III).  Depth 0
denotes the single bucket covering the whole hash space.  Bucket ids are
value objects used by the local/global directories, the bucketed LSM-tree,
and the rebalance planner.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, List, Tuple

from ..common.errors import DirectoryError
from ..common.hashutil import hash_key, low_bits


@dataclass(frozen=True, order=True)
class BucketId:
    """Identity of one extendible-hashing bucket."""

    prefix: int
    depth: int

    def __post_init__(self) -> None:
        if self.depth < 0:
            raise DirectoryError("bucket depth must be non-negative")
        if self.depth > 63:
            raise DirectoryError("bucket depth above 63 bits is not supported")
        if self.prefix != low_bits(self.prefix, self.depth):
            raise DirectoryError(
                f"prefix {self.prefix:#x} does not fit in {self.depth} bits"
            )

    # -- membership ---------------------------------------------------------

    def contains_hash(self, hash_value: int) -> bool:
        """True if a key with this hash belongs to the bucket."""
        return low_bits(hash_value, self.depth) == self.prefix

    def contains_key(self, key: Any) -> bool:
        """True if ``key`` (after hashing) belongs to the bucket."""
        return self.contains_hash(hash_key(key))

    # -- structure ----------------------------------------------------------

    def split(self) -> Tuple["BucketId", "BucketId"]:
        """Return the two children produced by taking one more hash bit.

        The child whose new bit is 0 keeps the same prefix; the child whose
        new bit is 1 gains ``1 << depth``.  Figure 3 of the paper shows the
        bucket ``11`` (depth 2) splitting into ``011`` and ``111`` (depth 3).
        """
        child_depth = self.depth + 1
        low = BucketId(self.prefix, child_depth)
        high = BucketId(self.prefix | (1 << self.depth), child_depth)
        return low, high

    def parent(self) -> "BucketId":
        """Return the bucket this one would merge back into."""
        if self.depth == 0:
            raise DirectoryError("the root bucket has no parent")
        return BucketId(low_bits(self.prefix, self.depth - 1), self.depth - 1)

    def sibling(self) -> "BucketId":
        """Return the other child of this bucket's parent."""
        if self.depth == 0:
            raise DirectoryError("the root bucket has no sibling")
        return BucketId(self.prefix ^ (1 << (self.depth - 1)), self.depth)

    def is_ancestor_of(self, other: "BucketId") -> bool:
        """True if ``other`` covers a subset of this bucket's hash space."""
        if other.depth < self.depth:
            return False
        return low_bits(other.prefix, self.depth) == self.prefix

    def overlaps(self, other: "BucketId") -> bool:
        """True if the two buckets share any hash value."""
        return self.is_ancestor_of(other) or other.is_ancestor_of(self)

    # -- sizing ---------------------------------------------------------------

    def normalized_size(self, global_depth: int) -> int:
        """The paper's |B| = 2^(D - d), the directory-slot count of the bucket."""
        if global_depth < self.depth:
            raise DirectoryError(
                f"global depth {global_depth} is smaller than bucket depth {self.depth}"
            )
        return 1 << (global_depth - self.depth)

    def directory_slots(self, global_depth: int) -> List[int]:
        """All global-directory slots (of size 2^D) that map to this bucket."""
        slots = []
        step = 1 << self.depth
        for high_bits in range(self.normalized_size(global_depth)):
            slots.append(self.prefix + high_bits * step)
        return slots

    # -- formatting -----------------------------------------------------------

    @property
    def label(self) -> str:
        """Binary label as the paper writes it (e.g. ``011`` for depth 3)."""
        if self.depth == 0:
            return "*"
        return format(self.prefix, "b").zfill(self.depth)

    def __str__(self) -> str:
        return self.label

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"BucketId({self.label})"


ROOT_BUCKET = BucketId(0, 0)


def covers_exactly(buckets: Iterable[BucketId]) -> bool:
    """True if ``buckets`` tile the hash space exactly once.

    This is the core well-formedness invariant of an extendible-hash
    directory: every hash value must map to exactly one bucket.  The check
    works on normalized sizes at the maximum depth present.
    """
    bucket_list = list(buckets)
    if not bucket_list:
        return False
    max_depth = max(b.depth for b in bucket_list)
    total = 0
    seen_slots = set()
    for bucket in bucket_list:
        for slot in bucket.directory_slots(max_depth):
            if slot in seen_slots:
                return False
            seen_slots.add(slot)
            total += 1
    return total == (1 << max_depth)


def bucket_for_key(key: Any, buckets: Iterable[BucketId]) -> BucketId:
    """Find the bucket that owns ``key`` among ``buckets``.

    Raises :class:`DirectoryError` if no bucket (or more than one, which would
    mean a corrupt directory) matches.
    """
    hashed = hash_key(key)
    matches = [bucket for bucket in buckets if bucket.contains_hash(hashed)]
    if len(matches) != 1:
        raise DirectoryError(
            f"key {key!r} matched {len(matches)} buckets; directory is corrupt"
        )
    return matches[0]
