"""Partitioning substrate: extendible hashing, static bucketing, consistent hashing.

* :class:`BucketId` — an extendible-hash bucket identity ``(prefix, depth)``.
* :class:`GlobalDirectory` / :class:`LocalDirectory` — the CC-side and
  partition-side directories of Section III.
* :mod:`repro.hashing.static_bucket` — StaticHash's fixed 256-bucket layout.
* :class:`ConsistentHashRing` — the consistent-hashing baseline with virtual
  nodes.
* :mod:`repro.hashing.partitioners` — the deterministic partitioning
  functions (hash-modulo, directory-routed, range).
"""

from .bucket_id import ROOT_BUCKET, BucketId, bucket_for_key, covers_exactly
from .consistent import ConsistentHashRing
from .extendible import GlobalDirectory, LocalDirectory
from .partitioners import (
    DirectoryPartitioner,
    HashModuloPartitioner,
    Partitioner,
    RangePartitioner,
)
from .static_bucket import (
    buckets_per_partition,
    static_bucket_depth,
    static_buckets,
    static_directory,
)

__all__ = [
    "ROOT_BUCKET",
    "BucketId",
    "ConsistentHashRing",
    "DirectoryPartitioner",
    "GlobalDirectory",
    "HashModuloPartitioner",
    "LocalDirectory",
    "Partitioner",
    "RangePartitioner",
    "bucket_for_key",
    "buckets_per_partition",
    "covers_exactly",
    "static_bucket_depth",
    "static_buckets",
    "static_directory",
]
