"""Record partitioners (Section II-A).

A partitioning function deterministically assigns each record to a partition
based on its partitioning key.  Three deterministic partitioners are provided:

* :class:`HashModuloPartitioner` — AsterixDB's existing scheme,
  ``hash(K) mod N``, used by the global-rebalancing ``Hashing`` baseline.
* :class:`DirectoryPartitioner` — routes through an extendible-hash
  :class:`~repro.hashing.extendible.GlobalDirectory`; used by StaticHash and
  DynaHash.
* :class:`RangePartitioner` — classic range partitioning, implemented for the
  Section II-A discussion and the range-skew ablation; not used by DynaHash
  itself because of range-skew concerns in OLAP clusters.

All partitioners expose the same small protocol so data feeds and the query
planner can treat them uniformly.
"""

from __future__ import annotations

import bisect
from typing import Any, List, Protocol, Sequence

from ..common.errors import ConfigError
from ..common.hashutil import hash_key
from .extendible import GlobalDirectory


class Partitioner(Protocol):
    """Maps a partitioning key to a storage-partition id."""

    @property
    def num_partitions(self) -> int:
        ...  # pragma: no cover - protocol

    def partition_of(self, key: Any) -> int:
        ...  # pragma: no cover - protocol


class HashModuloPartitioner:
    """``hash(K) mod N``: AsterixDB's current global hash partitioning."""

    def __init__(self, num_partitions: int) -> None:
        if num_partitions < 1:
            raise ConfigError("num_partitions must be at least 1")
        self._num_partitions = num_partitions

    @property
    def num_partitions(self) -> int:
        return self._num_partitions

    def partition_of(self, key: Any) -> int:
        return hash_key(key) % self._num_partitions

    def moved_fraction(self, new_num_partitions: int, probes: int = 2000) -> float:
        """Fraction of keys that change partition when N changes.

        For modulo hashing this is close to ``1 - 1/max(N, N')`` — nearly all
        records move, which is exactly why the paper calls global rebalancing
        expensive.
        """
        other = HashModuloPartitioner(new_num_partitions)
        moved = sum(
            1
            for probe in range(probes)
            if self.partition_of(("__probe__", probe)) != other.partition_of(("__probe__", probe))
        )
        return moved / probes

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"HashModuloPartitioner(n={self._num_partitions})"


class DirectoryPartitioner:
    """Routes keys through an extendible-hash global directory."""

    def __init__(self, directory: GlobalDirectory) -> None:
        self._directory = directory

    @property
    def directory(self) -> GlobalDirectory:
        return self._directory

    @property
    def num_partitions(self) -> int:
        partitions = self._directory.partitions()
        return (max(partitions) + 1) if partitions else 0

    def partition_of(self, key: Any) -> int:
        return self._directory.partition_of_key(key)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"DirectoryPartitioner({self._directory!r})"


class RangePartitioner:
    """Range partitioning over split points (for the Section II-A comparison).

    ``split_points`` are the inclusive upper bounds of each partition except
    the last; keys above every split point go to the last partition.
    """

    def __init__(self, split_points: Sequence[Any]) -> None:
        self._split_points: List[Any] = list(split_points)
        if sorted(self._split_points) != self._split_points:
            raise ConfigError("split points must be sorted ascending")

    @property
    def num_partitions(self) -> int:
        return len(self._split_points) + 1

    def partition_of(self, key: Any) -> int:
        return bisect.bisect_left(self._split_points, key)

    @classmethod
    def uniform_over_ints(cls, low: int, high: int, num_partitions: int) -> "RangePartitioner":
        """Evenly split an integer key domain [low, high] into partitions."""
        if num_partitions < 1:
            raise ConfigError("num_partitions must be at least 1")
        if high < low:
            raise ConfigError("high must be >= low")
        width = (high - low + 1) / num_partitions
        points = [low + int(round(width * (i + 1))) - 1 for i in range(num_partitions - 1)]
        return cls(points)

    def skew(self, keys: Sequence[Any]) -> float:
        """Max/mean partition-population ratio for a sample of keys.

        Quantifies the range-skew problem that makes range partitioning
        unattractive for shared-nothing OLAP (Section III).
        """
        if not keys:
            return 1.0
        counts = [0] * self.num_partitions
        for key in keys:
            counts[self.partition_of(key)] += 1
        mean = sum(counts) / len(counts)
        return (max(counts) / mean) if mean else float("inf")

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"RangePartitioner(partitions={self.num_partitions})"
