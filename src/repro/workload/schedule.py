"""Phased workload schedules: warmup → steady → spike → ramp.

A :class:`Schedule` is an ordered list of :class:`Phase` objects the
:class:`~repro.workload.driver.WorkloadDriver` executes back to back.  Each
phase can override the workload's operation mix and key distribution, carry a
cluster resize (``rebalance={"add": 1}``) that runs *while* the phase's
traffic is applied, and cap its own length in simulated seconds — phases are
driven by the driver's metrics clock, which advances by each operation's
simulated latency, so a ``max_seconds`` bound is deterministic rather than
wall-clock dependent.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator, Mapping, Optional, Sequence, Tuple, Union

from .keygen import KeyGenerator
from .mixes import OperationMix

#: Keyword arguments a phase's ``rebalance`` mapping may carry (they are
#: forwarded to :meth:`repro.api.Database.rebalance`).
REBALANCE_KEYS = ("add", "remove", "target_nodes")


@dataclass(frozen=True)
class Phase:
    """One leg of a schedule: ``ops`` operations under one traffic shape."""

    name: str
    ops: int
    #: Mix override for this phase (name or instance); None inherits the spec's.
    mix: Optional[Union[str, OperationMix]] = None
    #: Key-distribution override (name or instance); None inherits the spec's.
    keys: Optional[Union[str, KeyGenerator]] = None
    #: Cluster resize executed while this phase's traffic is in flight, e.g.
    #: ``{"add": 1}``; reads interleave with the rebalance protocol phases and
    #: writes ride the concurrent-write replication path (Section V-A).
    rebalance: Optional[Mapping[str, int]] = None
    #: Stop the phase once it has consumed this much *simulated* time (only
    #: meaningful for non-rebalance phases, which execute op by op).
    max_seconds: Optional[float] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("phases need a name")
        if self.ops < 0:
            raise ValueError("ops must be non-negative")
        if self.rebalance is not None:
            unknown = sorted(set(self.rebalance) - set(REBALANCE_KEYS))
            if unknown:
                raise ValueError(
                    f"unknown rebalance keys {unknown}; allowed: {list(REBALANCE_KEYS)}"
                )
            if len(self.rebalance) != 1:
                raise ValueError(
                    "phase rebalance needs exactly one of add=/remove=/target_nodes="
                )
        if self.max_seconds is not None and self.max_seconds <= 0:
            raise ValueError("max_seconds must be positive")


@dataclass(frozen=True)
class Schedule:
    """An ordered, validated sequence of phases."""

    phases: Tuple[Phase, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if not self.phases:
            raise ValueError("a schedule needs at least one phase")
        names = [phase.name for phase in self.phases]
        if len(set(names)) != len(names):
            raise ValueError(f"phase names must be unique, got {names}")

    def __iter__(self) -> Iterator[Phase]:
        return iter(self.phases)

    def __len__(self) -> int:
        return len(self.phases)

    @property
    def total_ops(self) -> int:
        return sum(phase.ops for phase in self.phases)

    def names(self) -> Sequence[str]:
        return [phase.name for phase in self.phases]


def steady_schedule(ops: int, **phase_options: Any) -> Schedule:
    """A single steady phase of ``ops`` operations."""
    return Schedule((Phase(name="steady", ops=ops, **phase_options),))


def storm_schedule(
    warmup: int = 100,
    steady: int = 400,
    spike: int = 300,
    ramp: int = 100,
    rebalance: Optional[Mapping[str, int]] = None,
    spike_keys: Union[str, KeyGenerator, None] = "hotspot",
    spike_mix: Union[str, OperationMix, None] = None,
) -> Schedule:
    """The canonical four-phase traffic storm.

    ``warmup`` runs uniform traffic to touch the keyspace, ``steady``
    establishes the baseline under the workload's own mix/distribution,
    ``spike`` concentrates traffic (hotspot keys by default) while the given
    ``rebalance`` (default: add one node) is in flight, and ``ramp`` cools
    back down — so the metrics registry ends up with both steady-phase and
    rebalance-phase latency populations to compare (the Figure 7c story).
    """
    return Schedule(
        (
            Phase(name="warmup", ops=warmup, keys="uniform"),
            Phase(name="steady", ops=steady),
            Phase(
                name="spike",
                ops=spike,
                keys=spike_keys,
                mix=spike_mix,
                rebalance=dict(rebalance) if rebalance is not None else {"add": 1},
            ),
            Phase(name="ramp", ops=ramp),
        )
    )
