"""The traffic engine: YCSB-style workloads against the client API.

Key distributions (:mod:`~repro.workload.keygen`), operation mixes
(:mod:`~repro.workload.mixes`), phased schedules
(:mod:`~repro.workload.schedule`), and the :class:`WorkloadDriver`
(:mod:`~repro.workload.driver`) that executes it all through
:class:`~repro.api.dataset.Dataset` handles with deterministic seeding from
``ClusterConfig.seed``.  Telemetry lands in :mod:`repro.metrics` via the
cluster event bus, tagged with the cluster phase (steady vs rebalance).

Client code should import these names from :mod:`repro.api.workloads`.
"""

from .driver import (
    PhaseResult,
    WorkloadDriver,
    WorkloadReport,
    WorkloadSpec,
    run_workload,
)
from .keygen import (
    DISTRIBUTIONS,
    HotspotKeys,
    KeyGenerator,
    LatestKeys,
    UniformKeys,
    ZipfianKeys,
    make_key_generator,
)
from .mixes import OPERATIONS, OperationMix, YCSB_MIXES, make_mix
from .schedule import Phase, Schedule, steady_schedule, storm_schedule

__all__ = [
    "DISTRIBUTIONS",
    "HotspotKeys",
    "KeyGenerator",
    "LatestKeys",
    "OPERATIONS",
    "OperationMix",
    "Phase",
    "PhaseResult",
    "Schedule",
    "UniformKeys",
    "WorkloadDriver",
    "WorkloadReport",
    "WorkloadSpec",
    "YCSB_MIXES",
    "ZipfianKeys",
    "make_key_generator",
    "make_mix",
    "run_workload",
    "steady_schedule",
    "storm_schedule",
]
