"""Key distributions for the traffic engine (the YCSB core distributions).

A generator maps a seeded :class:`random.Random` plus the current keyspace
size onto a key *index* in ``[0, limit)``; the driver turns indexes into
primary-key values.  Keeping the RNG external means one driver-owned RNG
seeds every stochastic choice (key draws, batch sizes, scan lengths), which
is what makes two runs with the same seed bit-identical.

Distributions (Cooper et al., "Benchmarking Cloud Serving Systems with
YCSB", SoCC'10):

* :class:`UniformKeys` — every key equally likely.
* :class:`ZipfianKeys` — the YCSB zeta-normalised zipfian; index 0 is the
  hottest key.  ``scrambled=True`` hashes the draw across the keyspace so
  the hot set is not one contiguous range (YCSB's ScrambledZipfian).
* :class:`HotspotKeys` — a hot fraction of the keyspace absorbs a fixed
  fraction of the traffic.
* :class:`LatestKeys` — zipfian over the most recently inserted keys
  (YCSB's SkewedLatest; workload D reads what was just written).
"""

from __future__ import annotations

import random
from typing import Any, Dict, Tuple

from ..common.hashutil import hash_key

#: Cache of zipfian zeta normalisation constants keyed by ``(n, theta)``.
#: Computing zeta is O(n) over the keyspace and every driver (and every
#: phase-level distribution override) used to recompute it at construction;
#: the constant is a pure function of its key, so one process-wide map
#: serves every generator.
_ZETA_CACHE: Dict[Tuple[int, float], float] = {}


class KeyGenerator:
    """Base class: draw a key index in ``[0, limit)`` from ``rng``."""

    name = "base"

    def next_index(self, rng: random.Random, limit: int) -> int:
        raise NotImplementedError

    @staticmethod
    def _check_limit(limit: int) -> None:
        if limit < 1:
            raise ValueError("key generator needs a non-empty keyspace (limit >= 1)")

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"{type(self).__name__}()"


class UniformKeys(KeyGenerator):
    """Every live key is equally likely."""

    name = "uniform"

    def next_index(self, rng: random.Random, limit: int) -> int:
        self._check_limit(limit)
        return rng.randrange(limit)


class ZipfianKeys(KeyGenerator):
    """The YCSB zipfian generator over a fixed keyspace of ``num_keys``.

    ``theta`` is the skew (YCSB default 0.99; higher is more skewed).  The
    zeta normalisation constant is precomputed for ``num_keys``, so draws are
    O(1); when the live keyspace is smaller than ``num_keys`` the draw is
    folded into range, which preserves the skew shape.
    """

    name = "zipfian"

    def __init__(self, num_keys: int, theta: float = 0.99, scrambled: bool = False) -> None:
        if num_keys < 1:
            raise ValueError("num_keys must be at least 1")
        if not 0.0 < theta < 1.0:
            raise ValueError("theta must be in (0, 1)")
        self.num_keys = num_keys
        self.theta = theta
        self.scrambled = scrambled
        self._alpha = 1.0 / (1.0 - theta)
        self._zetan = self._zeta(num_keys, theta)
        zeta2 = self._zeta(2, theta)
        self._eta = (1.0 - (2.0 / num_keys) ** (1.0 - theta)) / (
            1.0 - zeta2 / self._zetan
        )

    @staticmethod
    def _zeta(n: int, theta: float) -> float:
        key = (n, theta)
        cached = _ZETA_CACHE.get(key)
        if cached is None:
            cached = _ZETA_CACHE[key] = sum(1.0 / (i**theta) for i in range(1, n + 1))
        return cached

    def _draw(self, rng: random.Random) -> int:
        u = rng.random()
        uz = u * self._zetan
        if uz < 1.0:
            return 0
        if uz < 1.0 + 0.5**self.theta:
            return 1
        return int(self.num_keys * ((self._eta * u) - self._eta + 1.0) ** self._alpha)

    def next_index(self, rng: random.Random, limit: int) -> int:
        self._check_limit(limit)
        index = min(self._draw(rng), self.num_keys - 1)
        if self.scrambled:
            index = hash_key(index) % self.num_keys
        if limit <= self.num_keys:
            return index % limit
        # The live keyspace outgrew the precomputed grid (inserts during the
        # run): stretch the draw across it so new keys stay reachable while
        # the skew shape is preserved.
        return index * limit // self.num_keys

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        flavour = "scrambled " if self.scrambled else ""
        return f"ZipfianKeys({flavour}n={self.num_keys}, theta={self.theta})"


class HotspotKeys(KeyGenerator):
    """A hot fraction of the keyspace receives a fixed share of the traffic.

    With the defaults, 20% of the keys serve 80% of the operations.  The hot
    set is the *lowest* indexes, so tests can reason about it directly.
    """

    name = "hotspot"

    def __init__(self, hot_fraction: float = 0.2, hot_probability: float = 0.8) -> None:
        if not 0.0 < hot_fraction < 1.0:
            raise ValueError("hot_fraction must be in (0, 1)")
        if not 0.0 < hot_probability <= 1.0:
            raise ValueError("hot_probability must be in (0, 1]")
        self.hot_fraction = hot_fraction
        self.hot_probability = hot_probability

    def next_index(self, rng: random.Random, limit: int) -> int:
        self._check_limit(limit)
        hot_count = max(1, int(limit * self.hot_fraction))
        if hot_count >= limit or rng.random() < self.hot_probability:
            return rng.randrange(min(hot_count, limit))
        return hot_count + rng.randrange(limit - hot_count)


class LatestKeys(KeyGenerator):
    """Zipfian skew towards the most recently inserted keys.

    A fixed-size zipfian window is anchored at the *end* of the live
    keyspace: offset 0 is the newest key.  YCSB workload D uses this with a
    95/5 read/insert mix.
    """

    name = "latest"

    def __init__(self, window: int = 256, theta: float = 0.99) -> None:
        if window < 1:
            raise ValueError("window must be at least 1")
        self.window = window
        self._zipfian = ZipfianKeys(window, theta=theta)

    def next_index(self, rng: random.Random, limit: int) -> int:
        self._check_limit(limit)
        offset = self._zipfian.next_index(rng, min(self.window, limit))
        return limit - 1 - offset


#: Registry of distribution names for config-style construction.
DISTRIBUTIONS = {
    "uniform": UniformKeys,
    "zipfian": ZipfianKeys,
    "hotspot": HotspotKeys,
    "latest": LatestKeys,
}


def make_key_generator(name: str, **options: Any) -> KeyGenerator:
    """Build a distribution by name (``uniform``/``zipfian``/``hotspot``/``latest``)."""
    try:
        factory = DISTRIBUTIONS[name.lower()]
    except KeyError:
        raise ValueError(
            f"unknown key distribution {name!r}; choose from {sorted(DISTRIBUTIONS)}"
        ) from None
    try:
        return factory(**options)
    except TypeError as error:
        # e.g. zipfian without num_keys: surface a config error, not a crash.
        raise ValueError(f"key distribution {name!r}: {error}") from None
