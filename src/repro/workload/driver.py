"""The workload driver: executes phased traffic through the client API.

A :class:`WorkloadDriver` turns a :class:`WorkloadSpec` (dataset, operation
mix, key distribution, phased schedule) into real operations against a
:class:`~repro.api.database.Database` session — ``get``/``insert``/``upsert``/
``delete``/``scan`` through the typed :class:`~repro.api.dataset.Dataset`
handles, so every operation flows through the same instrumented verbs client
code uses and lands in ``db.metrics`` tagged with the cluster phase in flight.

Determinism
-----------
One :class:`random.Random` seeded from ``ClusterConfig.seed`` (or an explicit
``seed=``) drives *every* stochastic choice in order: operation draws, key
draws, and the jittered feed-batch sizes used to flush buffered inserts.  Two
drivers with the same seed against identically configured databases therefore
produce bit-identical metric snapshots — the contract the determinism tests
pin down.

Traffic during a rebalance
--------------------------
A phase carrying ``rebalance={"add": 1}`` overlaps its traffic with the
resize, respecting the paper's Section V-A concurrency control:

* *Writes* ride the concurrent-write replication path (the same machinery as
  Figure 7c): they are applied at their source partitions and, for moving
  buckets, replicated to the destinations — a plain ``Dataset.insert`` during
  movement would be lost when the moved bucket is cleaned up at commit.
  Deletes drawn during a rebalance phase are downgraded to upserts because
  the replication channel carries upserting log records only.
* *Reads and scans* execute inside ``rebalance.phase`` event callbacks, i.e.
  genuinely **while** the operation is between protocol phases: the old
  directory is still live and the source partitions still serve every moved
  bucket until the commit point, exactly as the protocol promises.

When the driver is handed an :class:`~repro.sim.EventScheduler`
(``scheduler=``, what ``concurrency = "interleaved"`` in a scenario spec
selects), the rebalance phase runs as a scheduler actor instead: the protocol
is consumed segment by segment through :meth:`Database.rebalance_steps`, and
the foreground reads/scans are paced evenly across the bucket-move windows —
every move yields the clock back to the driver, not just the two legacy
callback points.  Both engines draw the phase plan from the same RNG in the
same order (see :meth:`WorkloadDriver._draw_rebalance_plan`), so interleaving
changes *when* ops execute but never *which* ops — final dataset contents and
per-verb counts are engine-independent, which the differential test harness
pins.

Autopilot
---------
When the session has an :class:`~repro.control.autopilot.Autopilot` attached
(``db.autopilot(...)``), the driver's traffic *is* the control loop's input:
the engine re-evaluates its policy every N ``op.*`` events, so a hotspot
spike phase can organically trigger a policy-driven rebalance mid-run with no
``rebalance=`` key in the schedule.  The run's report carries the decisions
taken while it ran (``report.autopilot_decisions``).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple, TYPE_CHECKING, Union

from ..metrics import MetricsSnapshot, PHASE_REBALANCE, PHASE_STEADY
from .keygen import (
    DISTRIBUTIONS,
    KeyGenerator,
    ZipfianKeys,
    make_key_generator,
)
from .mixes import OperationMix, make_mix
from .schedule import Phase, Schedule, steady_schedule

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..api.database import Database
    from ..api.dataset import Dataset
    from ..cluster.reports import ClusterRebalanceReport
    from ..control.autopilot import AutopilotDecision
    from ..sim import EventScheduler


@dataclass(frozen=True)
class WorkloadSpec:
    """What traffic to drive: dataset, shape, and schedule."""

    #: Dataset the traffic targets (created by :meth:`WorkloadDriver.prepare`
    #: when missing and ``create_dataset`` is True).
    dataset: str = "traffic"
    #: Primary-key field name of the driver's records.
    primary_key: str = "k"
    #: Records preloaded before the schedule starts (the initial keyspace).
    initial_records: int = 1000
    #: Approximate payload bytes per record.
    payload_bytes: int = 64
    #: Default operation mix (YCSB preset name or :class:`OperationMix`).
    mix: Union[str, OperationMix] = "B"
    #: Default key distribution (name or :class:`KeyGenerator` instance).
    keys: Union[str, KeyGenerator] = "zipfian"
    #: The phased schedule; None means one steady phase of ``default_ops``.
    schedule: Optional[Schedule] = None
    #: Ops for the implicit steady schedule when ``schedule`` is None.
    default_ops: int = 1000
    #: Mean feed batch size for buffered inserts (preload and insert ops).
    batch_size: int = 32
    #: Relative jitter applied to each flush's batch size, drawn from the
    #: driver RNG (a seeded stochastic path; 0 disables the jitter).
    batch_jitter: float = 0.25
    #: Keys spanned by one scan operation.
    scan_span: int = 16
    #: Create the dataset if it does not exist yet.
    create_dataset: bool = True
    #: Whether traffic phases use the batched op pipeline (chunked draws,
    #: cached bound verbs, one ``op.batch`` telemetry event per same-verb
    #: run).  ``None`` means auto: batched unless the session has an
    #: autopilot engine attached (whose evaluation points are op-stream
    #: positions the batched pipeline would coarsen).  Phases with a
    #: ``max_seconds`` budget always run the per-op loop — its cutoff is
    #: checked before every op — regardless of this flag.  The batched and
    #: per-op pipelines produce identical metric snapshots — pinned by test —
    #: so this is a throughput knob, not a semantic one.
    batch_ops: Optional[bool] = None
    #: Ops drawn per chunk by the batched pipeline.
    op_chunk: int = 256

    def __post_init__(self) -> None:
        if self.initial_records < 0:
            raise ValueError("initial_records must be non-negative")
        if self.payload_bytes < 0:
            raise ValueError("payload_bytes must be non-negative")
        if self.batch_size < 1:
            raise ValueError("batch_size must be at least 1")
        if not 0.0 <= self.batch_jitter < 1.0:
            raise ValueError("batch_jitter must be in [0, 1)")
        if self.scan_span < 1:
            raise ValueError("scan_span must be at least 1")
        if self.default_ops < 0:
            raise ValueError("default_ops must be non-negative")
        if self.op_chunk < 1:
            raise ValueError("op_chunk must be at least 1")


@dataclass
class PhaseResult:
    """Operation counts observed while one phase ran."""

    name: str
    ops: int = 0
    reads: int = 0
    reads_found: int = 0
    inserts: int = 0
    updates: int = 0
    deletes: int = 0
    scans: int = 0
    scan_rows: int = 0
    #: Simulated seconds the metrics clock advanced during the phase.
    simulated_seconds: float = 0.0
    rebalance_report: "Optional[ClusterRebalanceReport]" = None

    @property
    def reads_missing(self) -> int:
        return self.reads - self.reads_found


@dataclass
class WorkloadReport:
    """Everything one :meth:`WorkloadDriver.run` produced."""

    spec: WorkloadSpec
    seed: int
    phases: List[PhaseResult] = field(default_factory=list)
    #: Frozen registry view at the end of the run — cumulative across runs on
    #: the same session, identical across same-seed fresh sessions (the
    #: determinism contract).
    snapshot: Optional[MetricsSnapshot] = None
    #: p99 write latency (seconds) per cluster phase, over *this run's*
    #: samples only — the Figure 7c metric.
    write_p99_seconds: Dict[str, float] = field(default_factory=dict)
    read_p99_seconds: Dict[str, float] = field(default_factory=dict)
    total_ops: int = 0
    simulated_seconds: float = 0.0
    #: Decisions the session's autopilot engine took *during this run* (empty
    #: when no engine is attached) — how "phased traffic organically triggers
    #: a rebalance" shows up in the report.
    autopilot_decisions: "List[AutopilotDecision]" = field(default_factory=list)
    #: How many of those decisions executed a rebalance.
    autopilot_rebalances: int = 0

    def phase(self, name: str) -> PhaseResult:
        for result in self.phases:
            if result.name == name:
                return result
        raise KeyError(f"no phase named {name!r} in this report")

    def summary(self) -> str:
        lines = [
            f"workload {self.spec.dataset!r}: {self.total_ops} ops in "
            f"{self.simulated_seconds:.3f} simulated seconds (seed={self.seed})"
        ]
        for result in self.phases:
            marker = " [rebalance]" if result.rebalance_report is not None else ""
            lines.append(
                f"  {result.name}: {result.ops} ops "
                f"(r={result.reads} i={result.inserts} u={result.updates} "
                f"d={result.deletes} s={result.scans}){marker}"
            )
        if self.autopilot_decisions:
            lines.append(
                f"  autopilot: {len(self.autopilot_decisions)} decisions, "
                f"{self.autopilot_rebalances} rebalances triggered"
            )
        for phase_name in (PHASE_STEADY, PHASE_REBALANCE):
            p99 = self.write_p99_seconds.get(phase_name)
            if p99 is not None:
                lines.append(f"  write p99 [{phase_name}]: {p99 * 1e3:.3f} ms")
        return "\n".join(lines)


class WorkloadDriver:
    """Drives one :class:`WorkloadSpec` against an open database session."""

    def __init__(
        self,
        db: "Database",
        spec: Optional[WorkloadSpec] = None,
        seed: Optional[int] = None,
        *,
        scheduler: "Optional[EventScheduler]" = None,
        **spec_overrides: Any,
    ) -> None:
        if spec is not None and spec_overrides:
            raise ValueError("pass either a WorkloadSpec or keyword overrides, not both")
        self.db = db
        #: When set, rebalance phases run interleaved on this event scheduler
        #: (the ``concurrency = "interleaved"`` engine); None keeps the legacy
        #: run-to-completion path, bit-identical to pre-scheduler recordings.
        self.scheduler = scheduler
        self.spec = spec or WorkloadSpec(**spec_overrides)
        #: Every stochastic choice (op draws, key draws, batch jitter) comes
        #: from this one RNG, seeded from the cluster config by default.
        self.seed = db.config.seed if seed is None else seed
        self.rng = random.Random(self.seed)
        self.metrics = db.metrics
        self._mix = make_mix(self.spec.mix)
        self._keys = self._make_key_generator(self.spec.keys)
        #: The next primary key an insert op will allocate; keys below this
        #: bound form the live keyspace the read/update/scan draws cover.
        self.next_key = 0
        self._pending_rows: List[Dict[str, Any]] = []
        self._batch_target = self._draw_batch_target()
        self._prepared = False
        self._dataset_handle: "Optional[Dataset]" = None

    # -------------------------------------------------------------- plumbing

    @property
    def dataset(self) -> "Dataset":
        # Handles are stateless (every verb re-resolves the live runtime), so
        # one cached handle serves the whole run — resolved per access, this
        # property was a measurable slice of the per-op loop.
        handle = self._dataset_handle
        if handle is None:
            handle = self._dataset_handle = self.db.dataset(self.spec.dataset)
        return handle

    def _make_key_generator(self, keys: Union[str, KeyGenerator]) -> KeyGenerator:
        """Build a generator from a distribution name or pass an instance through."""
        if isinstance(keys, KeyGenerator):
            return keys
        name = str(keys).lower()
        if name not in DISTRIBUTIONS:
            # Let make_key_generator raise its uniform error message.
            return make_key_generator(name)
        if name == "zipfian":
            # Zipfian needs its keyspace size up front for the zeta constant.
            # Use at least a 1024-rank grid so a small (or empty) preload does
            # not degenerate to hammering a handful of keys; draws fold into
            # the live keyspace, and stretch across it if inserts outgrow the
            # grid (see ZipfianKeys.next_index).
            return ZipfianKeys(num_keys=max(1024, self.spec.initial_records))
        return make_key_generator(name)

    def _phase_keys(self, phase: Phase) -> KeyGenerator:
        """The phase's key-distribution override, or the workload default."""
        if phase.keys is None:
            return self._keys
        return self._make_key_generator(phase.keys)

    def _draw_batch_target(self) -> int:
        jitter = self.spec.batch_jitter
        if jitter == 0.0:
            return self.spec.batch_size
        scale = 1.0 + jitter * (2.0 * self.rng.random() - 1.0)
        return max(1, round(self.spec.batch_size * scale))

    def _row(self, index: int) -> Dict[str, Any]:
        payload = f"{index:010d}"
        if self.spec.payload_bytes > len(payload):
            payload += "x" * (self.spec.payload_bytes - len(payload))
        return {self.spec.primary_key: index, "payload": payload}

    @property
    def live_keys(self) -> int:
        """Size of the currently allocated keyspace (flushed or pending)."""
        return max(1, self.next_key)

    @property
    def durable_keys(self) -> int:
        """Size of the *flushed* keyspace — what reads can actually find.

        Keys of inserts still sitting in the client-side batch buffer are
        excluded, otherwise "read latest" workloads (YCSB D) would mostly
        probe rows that have not reached the cluster yet.
        """
        return max(1, self.next_key - len(self._pending_rows))

    # --------------------------------------------------------------- prepare

    def prepare(self) -> None:
        """Create (if needed) and preload the dataset; idempotent."""
        if self._prepared:
            return
        if self.spec.dataset not in self.db.dataset_names():
            if not self.spec.create_dataset:
                raise ValueError(
                    f"dataset {self.spec.dataset!r} does not exist and "
                    "create_dataset is False"
                )
            self.db.create_dataset(self.spec.dataset, primary_key=self.spec.primary_key)
        dataset = self.dataset
        self.next_key = dataset.count()
        remaining = self.spec.initial_records - self.next_key
        cluster = self.db.cluster
        while remaining > 0:
            batch = min(remaining, self._draw_batch_target())
            rows = [self._row(self.next_key + offset) for offset in range(batch)]
            # Preload is setup, not traffic: feed directly (the documented
            # escape hatch) so bulk-load batches do not contaminate the
            # steady-phase write histograms the Figure 7c comparison reads.
            cluster.feed(self.spec.dataset, batch_size=batch).ingest(rows)
            self.next_key += batch
            remaining -= batch
        self._prepared = True

    # ------------------------------------------------------------------- run

    def run(self) -> WorkloadReport:
        """Execute the whole schedule and return the workload report.

        ``report.simulated_seconds`` and the percentile fields cover *this
        run's traffic only*: the duration is the metrics-clock delta across
        the run (the preload's raw-feed bulk load emits no op samples, so it
        does not advance the clock), and the latency populations are deltas
        against the registry state at run start — back-to-back runs on one
        session each report their own numbers.  ``report.snapshot`` is the
        session registry at the end of the run — cumulative across runs on
        the same session, identical across same-seed fresh sessions.
        """
        run_started = self.metrics.clock.now
        since = self.metrics.snapshot()
        self.prepare()
        schedule = self.spec.schedule or steady_schedule(self.spec.default_ops)
        report = WorkloadReport(spec=self.spec, seed=self.seed)
        # The autopilot engine (if one is attached) evaluates off the op.*
        # events this run emits; remember where its log stood so the report
        # can carry just this run's decisions.
        pilot = getattr(self.db, "autopilot_engine", None)
        decisions_before = len(pilot.decisions) if pilot is not None else 0
        rebalances_before = pilot.rebalances_triggered if pilot is not None else 0
        events = self.db.events
        for phase in schedule:
            # Tracing hook points: bracket the phase for the span tree. The
            # probe is a cached dict hit, so untraced runs skip the payload.
            if events.has_subscribers("trace.phase.start"):
                events.emit("trace.phase.start", phase=phase.name, ops=phase.ops)
            started = self.metrics.clock.now
            if phase.rebalance is not None:
                result = self._run_rebalance_phase(phase)
            else:
                result = self._run_traffic_phase(phase)
            result.simulated_seconds = self.metrics.clock.now - started
            report.phases.append(result)
            if events.has_subscribers("trace.phase.end"):
                events.emit(
                    "trace.phase.end",
                    phase=phase.name,
                    ops=result.ops,
                    seconds=result.simulated_seconds,
                )
        self._flush_inserts()
        report.total_ops = sum(result.ops for result in report.phases)
        report.simulated_seconds = self.metrics.clock.now - run_started
        for phase_name in (PHASE_STEADY, PHASE_REBALANCE):
            writes = self.metrics.write_latency_since(since, phase_name)
            if writes.count:
                report.write_p99_seconds[phase_name] = writes.percentile(0.99)
            reads = self.metrics.latency_since(since, "read", phase_name)
            if reads.count:
                report.read_p99_seconds[phase_name] = reads.percentile(0.99)
        if pilot is not None:
            report.autopilot_decisions = list(pilot.decisions[decisions_before:])
            report.autopilot_rebalances = pilot.rebalances_triggered - rebalances_before
        report.snapshot = self.metrics.snapshot()
        return report

    # ------------------------------------------------------- steady traffic

    def _use_batched_pipeline(self, phase: Phase) -> bool:
        """Whether this traffic phase runs through the batched op pipeline."""
        if phase.max_seconds is not None:
            # The time budget is checked before every op; chunked execution
            # would quantise (or with an explicit batch_ops=True, silently
            # ignore) the cutoff point, so such phases always run per-op.
            return False
        if self.spec.batch_ops is not None:
            return self.spec.batch_ops
        # An attached autopilot evaluates at op-stream positions; batching
        # would move its decision points, so those runs keep the per-op loop.
        return getattr(self.db, "autopilot_engine", None) is None

    def _run_traffic_phase(self, phase: Phase) -> PhaseResult:
        mix = make_mix(phase.mix) if phase.mix is not None else self._mix
        keys = self._phase_keys(phase)
        result = PhaseResult(name=phase.name)
        if self._use_batched_pipeline(phase):
            remaining = phase.ops
            chunk_size = self.spec.op_chunk
            while remaining > 0:
                chunk = min(chunk_size, remaining)
                plan = self._draw_chunk(chunk, mix, keys, result)
                self._execute_chunk(plan, result)
                remaining -= chunk
            self._flush_inserts()
            return result
        started = self.metrics.clock.now
        for _ in range(phase.ops):
            if (
                phase.max_seconds is not None
                and self.metrics.clock.now - started >= phase.max_seconds
            ):
                break
            self._execute_op(mix.choose(self.rng), keys, result)
        self._flush_inserts()
        return result

    # ------------------------------------------------- batched traffic chunks

    def _draw_chunk(
        self, count: int, mix: OperationMix, keys: KeyGenerator, result: PhaseResult
    ) -> List[Tuple[str, Any]]:
        """Draw ``count`` ops worth of randomness into an action plan.

        Consumes the driver RNG in *exactly* the order the per-op loop does —
        op draw, then key draw, then (at insert-buffer flush points) the next
        jittered batch-target draw — so the batched pipeline sees the same
        key/op stream, bit for bit.  Execution performs no RNG draws, which
        is what makes separating "draw" from "do" safe.

        The plan is a list of actions: ``("read", key)``, ``("scan", low)``,
        ``("update", row)``, ``("delete", key)``, ``("buffer", row)`` for a
        buffered insert, and ``("flush", next_batch_target)`` where the old
        loop would have flushed the insert buffer and redrawn the target.
        """
        rng = self.rng
        choose = mix.choose
        next_index = keys.next_index
        plan: List[Tuple[str, Any]] = []
        pending = len(self._pending_rows)
        batch_target = self._batch_target
        for _ in range(count):
            op = choose(rng)
            result.ops += 1
            if op == "read":
                plan.append(("read", next_index(rng, max(1, self.next_key - pending))))
                result.reads += 1
            elif op == "insert":
                plan.append(("buffer", self._row(self.next_key)))
                self.next_key += 1
                pending += 1
                result.inserts += 1
                if pending >= batch_target:
                    # The old loop flushed here and redrew the jittered batch
                    # target right after the insert landed; the draw happens
                    # now (same RNG position), the insert at execution time.
                    batch_target = self._draw_batch_target()
                    plan.append(("flush", batch_target))
                    pending = 0
            elif op == "update":
                key = next_index(rng, max(1, self.next_key - pending))
                plan.append(("update", self._row(key)))
                result.updates += 1
            elif op == "delete":
                plan.append(("delete", next_index(rng, max(1, self.next_key - pending))))
                result.deletes += 1
            elif op == "scan":
                plan.append(("scan", next_index(rng, max(1, self.next_key - pending))))
                result.scans += 1
            else:  # pragma: no cover - defensive
                raise ValueError(f"unknown operation {op!r}")
        return plan

    def _execute_chunk(self, plan: List[Tuple[str, Any]], result: PhaseResult) -> None:
        """Execute a drawn plan, dispatching maximal same-verb runs as batches.

        Consecutive reads go through :meth:`Dataset.get_many` and consecutive
        updates through :meth:`Dataset.upsert_each` — one ``op.batch``
        telemetry event per run, identical per-op latencies.  Ops stay in
        drawn order, so storage state (and therefore every latency sample)
        evolves exactly as under the per-op loop.
        """
        dataset = self.dataset
        index = 0
        total = len(plan)
        while index < total:
            verb, arg = plan[index]
            if verb == "read":
                end = index + 1
                while end < total and plan[end][0] == "read":
                    end += 1
                read_keys = [plan[i][1] for i in range(index, end)]
                for record in dataset.get_many(read_keys):
                    if record is not None:
                        result.reads_found += 1
                index = end
            elif verb == "update":
                end = index + 1
                while end < total and plan[end][0] == "update":
                    end += 1
                dataset.upsert_each([plan[i][1] for i in range(index, end)])
                index = end
            elif verb == "buffer":
                self._pending_rows.append(arg)
                index += 1
            elif verb == "flush":
                rows, self._pending_rows = self._pending_rows, []
                if rows:
                    dataset.insert(rows, batch_size=len(rows))
                self._batch_target = arg
                index += 1
            elif verb == "delete":
                dataset.delete(arg)
                index += 1
            else:  # scan
                rows = list(dataset.scan(low=arg, high=arg + self.spec.scan_span))
                result.scan_rows += len(rows)
                index += 1

    def _execute_op(self, op: str, keys: KeyGenerator, result: PhaseResult) -> None:
        dataset = self.dataset
        result.ops += 1
        if op == "read":
            key = keys.next_index(self.rng, self.durable_keys)
            record = dataset.get(key)
            result.reads += 1
            if record is not None:
                result.reads_found += 1
        elif op == "insert":
            self._pending_rows.append(self._row(self.next_key))
            self.next_key += 1
            result.inserts += 1
            if len(self._pending_rows) >= self._batch_target:
                self._flush_inserts()
        elif op == "update":
            key = keys.next_index(self.rng, self.durable_keys)
            dataset.upsert([self._row(key)], batch_size=1)
            result.updates += 1
        elif op == "delete":
            key = keys.next_index(self.rng, self.durable_keys)
            dataset.delete(key)
            result.deletes += 1
        elif op == "scan":
            low = keys.next_index(self.rng, self.durable_keys)
            rows = list(dataset.scan(low=low, high=low + self.spec.scan_span))
            result.scans += 1
            result.scan_rows += len(rows)
        else:  # pragma: no cover - defensive
            raise ValueError(f"unknown operation {op!r}")

    def _flush_inserts(self) -> None:
        if not self._pending_rows:
            return
        rows, self._pending_rows = self._pending_rows, []
        self.dataset.insert(rows, batch_size=len(rows))
        # Redraw the jittered batch target for the next flush (seeded).
        self._batch_target = self._draw_batch_target()

    # ------------------------------------------------- traffic during resize

    def _draw_rebalance_plan(
        self, phase: Phase, mix: OperationMix, keys: KeyGenerator, result: PhaseResult
    ) -> Tuple[List[Dict[str, Any]], List[Tuple[str, int]]]:
        """Partition the phase's draws into replicated writes and foreground.

        Writes ride the replication path, reads/scans execute mid-protocol.
        Deletes are downgraded to upserts: the rebalance replication channel
        carries upserting log records only (Section V-A).  Draws target the
        keyspace durable at phase start — keys allocated to this phase's
        concurrent inserts are only applied mid-movement, so reads probing
        them would mostly miss.

        Both engines call this with the driver RNG at the same position and
        consume it in the same order, so the legacy and interleaved paths see
        bit-identical write rows and foreground ops — the invariant the
        differential harness pins.
        """
        durable = self.durable_keys
        write_rows: List[Dict[str, Any]] = []
        foreground: List[Tuple[str, int]] = []
        for _ in range(phase.ops):
            op = mix.choose(self.rng)
            result.ops += 1
            if op == "insert":
                write_rows.append(self._row(self.next_key))
                self.next_key += 1
                result.inserts += 1
            elif op in ("update", "delete"):
                key = keys.next_index(self.rng, durable)
                write_rows.append(self._row(key))
                result.updates += 1
            elif op == "scan":
                foreground.append(("scan", keys.next_index(self.rng, durable)))
            else:
                foreground.append(("read", keys.next_index(self.rng, durable)))
        return write_rows, foreground

    def _run_rebalance_foreground(
        self, pending: List[Tuple[str, int]], count: int, result: PhaseResult
    ) -> None:
        """Execute up to ``count`` queued foreground reads/scans, in order."""
        dataset = self.dataset
        for _ in range(min(count, len(pending))):
            op, key = pending.pop(0)
            if op == "scan":
                rows = list(dataset.scan(low=key, high=key + self.spec.scan_span))
                result.scans += 1
                result.scan_rows += len(rows)
            else:
                record = dataset.get(key)
                result.reads += 1
                if record is not None:
                    result.reads_found += 1

    def _run_rebalance_phase(self, phase: Phase) -> PhaseResult:
        assert phase.rebalance is not None
        if self.scheduler is not None:
            return self._run_rebalance_phase_interleaved(phase)
        mix = make_mix(phase.mix) if phase.mix is not None else self._mix
        keys = self._phase_keys(phase)
        result = PhaseResult(name=phase.name)
        self._flush_inserts()
        write_rows, foreground = self._draw_rebalance_plan(phase, mix, keys, result)
        pending = list(foreground)

        def on_protocol_phase(event: Any) -> None:
            # Run half the foreground ops after initialization and the rest
            # after data movement — both points are genuinely mid-rebalance
            # (the directory swap and bucket cleanup happen at commit, so the
            # sources still serve; finalization fires after the commit).
            if event.get("phase") == "initialization":
                self._run_rebalance_foreground(pending, (len(pending) + 1) // 2, result)
            elif event.get("phase") == "data_movement":
                self._run_rebalance_foreground(pending, len(pending), result)

        subscription = self.db.on("rebalance.phase", on_protocol_phase)
        try:
            # Phase-scheduled rebalances are exempt from chaos crash plans
            # (like autopilot ones): scheduled kills target the scenario's
            # explicit rebalance steps, which can pair with a recover step.
            result.rebalance_report = self.db.rebalance(
                **dict(phase.rebalance),
                concurrent_rows={self.spec.dataset: write_rows} if write_rows else None,
                arm_chaos=False,
            )
        finally:
            subscription.cancel()
        # Foreground ops the protocol produced no window for (e.g. a strategy
        # that emits no phase events) still execute, tagged with the phase the
        # registry is in by then.
        self._run_rebalance_foreground(pending, len(pending), result)
        return result

    def _run_rebalance_phase_interleaved(self, phase: Phase) -> PhaseResult:
        """The rebalance phase as an event-scheduler actor.

        The protocol is consumed segment by segment through
        :meth:`~repro.api.database.Database.rebalance_steps`; after each
        bucket-move window the actor runs an even quota of the queued
        foreground reads/scans (``ceil(pending / (remaining_moves + 1))``),
        and drains the rest inside the trailing concurrent-writes window —
        the last interleavable point before the commit swaps the directory.
        Strategies with no interleavable windows (the offline ``Hashing``
        baseline, aborted runs) fall through to the post-protocol drain,
        mirroring the legacy no-phase-events path.
        """
        assert phase.rebalance is not None and self.scheduler is not None
        mix = make_mix(phase.mix) if phase.mix is not None else self._mix
        keys = self._phase_keys(phase)
        result = PhaseResult(name=phase.name)
        self._flush_inserts()
        write_rows, foreground = self._draw_rebalance_plan(phase, mix, keys, result)
        pending = list(foreground)
        scheduler = self.scheduler

        def rebalance_actor() -> Any:
            steps = self.db.rebalance_steps(
                **dict(phase.rebalance),
                concurrent_rows={self.spec.dataset: write_rows} if write_rows else None,
                arm_chaos=False,
            )
            try:
                segment = next(steps)
                while True:
                    # Charge the protocol segment to the shared timeline; the
                    # scheduler re-dispatches this actor once the clock
                    # reaches the end of the window.
                    yield segment
                    kind = getattr(segment, "kind", None)
                    if kind == "move" and pending:
                        windows = getattr(segment, "remaining", 0) + 1
                        quota = -(-len(pending) // windows)
                        self._run_rebalance_foreground(pending, quota, result)
                    elif kind == "concurrent_writes":
                        self._run_rebalance_foreground(pending, len(pending), result)
                    segment = next(steps)
            except StopIteration as done:
                result.rebalance_report = done.value

        scheduler.spawn(f"rebalance:{phase.name}", rebalance_actor())
        scheduler.run()
        # Foreground ops the protocol produced no window for still execute,
        # tagged with the phase the registry is in by then.
        self._run_rebalance_foreground(pending, len(pending), result)
        return result


def run_workload(
    db: "Database",
    spec: Optional[WorkloadSpec] = None,
    seed: Optional[int] = None,
    **spec_overrides: Any,
) -> WorkloadReport:
    """One-call convenience: build a driver, run it, return the report."""
    return WorkloadDriver(db, spec, seed=seed, **spec_overrides).run()
