"""Operation mixes: the read/insert/update/delete/scan ratios of a workload.

An :class:`OperationMix` is a weighted choice over the driver's operation
verbs, sampled with the driver's single seeded RNG so runs are reproducible.
The named presets mirror the six core YCSB workloads (Cooper et al., SoCC'10):

========= ======================================== ==========================
``A``     50% read / 50% update                    update heavy (session store)
``B``     95% read / 5% update                     read mostly (photo tagging)
``C``     100% read                                read only (profile cache)
``D``     95% read / 5% insert                     read latest (status updates)
``E``     95% scan / 5% insert                     short ranges (threaded convs)
``F``     50% read / 50% update                    read-modify-write (user db)
========= ======================================== ==========================

YCSB F's read-modify-write is modelled as its observable op pair (a read and
an update of the same key count as one read sample plus one update sample),
so its ratios coincide with A; it is kept as a separate preset because
workload D/F choose different key distributions when used with the driver.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Union

#: Operation names in the canonical sampling order (fixed so a given RNG
#: sequence always maps to the same operations).
OPERATIONS = ("read", "insert", "update", "delete", "scan")


@dataclass(frozen=True)
class OperationMix:
    """A weighted read/insert/update/delete/scan ratio (à la YCSB A-F)."""

    name: str = "custom"
    read: float = 0.0
    insert: float = 0.0
    update: float = 0.0
    delete: float = 0.0
    scan: float = 0.0

    def __post_init__(self) -> None:
        weights = self.weights_raw()
        if any(weight < 0 for weight in weights.values()):
            raise ValueError("operation weights must be non-negative")
        total = sum(weights.values())
        if total <= 0:
            raise ValueError("an operation mix needs at least one positive weight")
        # choose() runs once per operation of every workload; precompute the
        # cumulative thresholds (the dataclass is frozen, hence __setattr__).
        cumulative, accumulated = [], 0.0
        for op in OPERATIONS:
            accumulated += weights[op] / total
            cumulative.append(accumulated)
        object.__setattr__(self, "_cumulative", tuple(cumulative))

    def weights_raw(self) -> Dict[str, float]:
        return {op: getattr(self, op) for op in OPERATIONS}

    def weights(self) -> Dict[str, float]:
        """The mix normalised so the weights sum to 1.0."""
        raw = self.weights_raw()
        total = sum(raw.values())
        return {op: weight / total for op, weight in raw.items()}

    @property
    def write_fraction(self) -> float:
        """Fraction of operations that mutate data (insert/update/delete)."""
        weights = self.weights()
        return weights["insert"] + weights["update"] + weights["delete"]

    def choose(self, rng: random.Random) -> str:
        """Draw one operation name from the mix using ``rng``."""
        draw = rng.random()
        for op, threshold in zip(OPERATIONS, self._cumulative, strict=True):
            if draw < threshold:
                return op
        return OPERATIONS[0]  # pragma: no cover - float round-off guard

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        parts = ", ".join(
            f"{op}={weight:.2f}" for op, weight in self.weights().items() if weight
        )
        return f"OperationMix({self.name!r}, {parts})"


#: The YCSB core workload presets (see the module docstring).
YCSB_MIXES: Dict[str, OperationMix] = {
    "A": OperationMix(name="A", read=0.5, update=0.5),
    "B": OperationMix(name="B", read=0.95, update=0.05),
    "C": OperationMix(name="C", read=1.0),
    "D": OperationMix(name="D", read=0.95, insert=0.05),
    "E": OperationMix(name="E", scan=0.95, insert=0.05),
    "F": OperationMix(name="F", read=0.5, update=0.5),
}


def make_mix(mix: Union[str, OperationMix]) -> OperationMix:
    """Resolve a mix: an :class:`OperationMix` passes through, a string names
    a YCSB preset (case-insensitive)."""
    if isinstance(mix, OperationMix):
        return mix
    try:
        return YCSB_MIXES[mix.upper()]
    except (KeyError, AttributeError):
        raise ValueError(
            f"unknown operation mix {mix!r}; choose from {sorted(YCSB_MIXES)} "
            "or pass an OperationMix"
        ) from None
