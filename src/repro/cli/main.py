"""The ``python -m repro`` command line: scenarios in, reports out.

The subcommands cover the operate-it-like-a-database loop the docs teach
(declare a cluster + workload + policy, run it, read the report):

``run SPEC``
    Execute a declarative scenario spec (TOML or JSON — see
    :mod:`repro.scenario`), print the run report, and exit non-zero if any
    ``[checks]`` assertion failed.  ``--record`` writes a recording for
    ``replay``/``inspect``; ``--seed``/``--strategy`` override the spec.

``bench``
    The benchmark harness: ``--suite micro`` runs the hot-path
    microbenchmarks (with the same ``--check``/``--write-baseline`` perf-gate
    flags as ``python -m repro.bench.micro``), ``--suite traffic`` /
    ``autopilot`` run the named experiment drivers, writing ``BENCH_*.json``
    artifacts when an artifact directory is configured.  ``--dry-run`` lists
    what would run.

``inspect RECORDING``
    Print a recorded run's cluster directory/partition state, check
    outcomes, counters, and latency percentiles — offline, from the JSON.
    ``--format json`` emits the same summary as a machine-readable document.

``replay RECORDING``
    Re-run the recorded scenario from its embedded spec + seed and diff the
    resulting :class:`~repro.api.MetricsSnapshot` — and, for traced runs,
    the embedded trace payload — against the recorded ones.  Zero
    differences is the determinism contract; any difference lists line by
    line and exits 1.

``trace RECORDING|SPEC``
    Render a traced run: the span tree and a phase Gantt in the terminal,
    plus a Chrome trace-event JSON file Perfetto (https://ui.perfetto.dev)
    loads directly.  Given a recording, reads the embedded trace; given a
    spec, runs it with tracing force-enabled first.  ``--timeline-csv``
    additionally exports the timeline series as byte-stable CSV.

``sweep SPEC``
    Expand a base spec over a parameter grid (the spec's ``[sweep]`` section
    and/or ``--axis strategy=a,b`` arguments), run one deterministic
    recording per cell — ``--jobs N`` fans cells out across processes with
    byte-identical results — and write a byte-stable sweep manifest.  See
    :mod:`repro.report`.

``compare RECORDING... | MANIFEST``
    The comparison engine: load N recordings (or a sweep manifest), align
    them on the shared simulated-time grid, print head-to-head tables and
    per-pair deltas, optionally enforce ``--gate`` regression thresholds
    (exit 1 on breach) and write a self-contained HTML dashboard.

``lint [PATHS...]``
    Run **reprolint** (:mod:`repro.analysis`), the invariant-enforcing
    static-analysis suite: determinism rules, event-contract rules, and
    registry-key rules over the default roots (``src``, ``tests``,
    ``examples``, ``benchmarks``) or the given paths.  ``--format github``
    emits workflow-command annotations for CI; exits 1 on violations.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence

from ..scenario import (
    ScenarioSpecError,
    diff_chaos,
    diff_snapshots,
    diff_traces,
    load_recording,
    load_scenario,
    run_scenario,
    snapshot_from_recording,
    spec_from_recording,
    write_recording,
)

__all__ = ["build_parser", "main"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Scenario runner for the DynaHash reproduction: execute "
        "declarative experiment specs, benchmark the hot paths, and check "
        "determinism via recorded snapshots.",
    )
    subparsers = parser.add_subparsers(dest="command", metavar="COMMAND")

    run = subparsers.add_parser(
        "run",
        help="execute a scenario spec and print the run report",
        description="Execute a declarative scenario spec (TOML or JSON). "
        "Exits 1 if any [checks] assertion fails.",
    )
    run.add_argument("spec", help="path to the scenario spec (.toml or .json)")
    run.add_argument("--seed", type=int, help="override the spec's cluster seed")
    run.add_argument(
        "--strategy",
        help="override the spec's rebalancing strategy (drops the spec's "
        "strategy_options — they are strategy-specific)",
    )
    run.add_argument(
        "--concurrency",
        choices=["legacy", "interleaved"],
        help="override the spec's execution engine: 'legacy' runs phases to "
        "completion; 'interleaved' runs rebalance phases on the repro.sim "
        "event scheduler (bucket moves and foreground ops share the clock)",
    )
    run.add_argument(
        "--record",
        metavar="PATH",
        help="write a recording (spec + seed + metrics snapshot) for replay/inspect",
    )
    run.add_argument(
        "--quiet",
        "-q",
        action="store_true",
        help="print only the final verdict line and check failures",
    )

    bench = subparsers.add_parser(
        "bench",
        help="run the micro suite or a named experiment, writing BENCH_*.json",
        description="Benchmark harness. --suite micro is the CI perf gate's "
        "suite; traffic/autopilot run the named experiment drivers.",
    )
    bench.add_argument(
        "--suite",
        default="micro",
        choices=("micro", "traffic", "autopilot", "all"),
        help="which benchmarks to run (default: micro)",
    )
    bench.add_argument(
        "--dry-run",
        action="store_true",
        help="list what would run without running it",
    )
    bench.add_argument(
        "--scale",
        default="smoke",
        choices=("smoke", "full"),
        help="experiment scale for the named suites (default: smoke)",
    )
    bench.add_argument("--repeats", type=int, default=None, help="micro suite repeats")
    bench.add_argument(
        "--check",
        metavar="BASELINE",
        help="micro suite: compare against a baseline; exit 1 on regression",
    )
    bench.add_argument(
        "--tolerance",
        type=float,
        default=None,
        help="micro suite: allowed normalized regression (default 0.25)",
    )
    bench.add_argument(
        "--write-baseline",
        metavar="PATH",
        help="micro suite: write the run's payload as a new baseline",
    )
    bench.add_argument(
        "--artifact-dir",
        help="directory for BENCH_*.json artifacts (overrides REPRO_BENCH_ARTIFACT_DIR)",
    )

    inspect = subparsers.add_parser(
        "inspect",
        help="print cluster/metrics state from a recorded run",
        description="Summarise a recording written by `run --record`: cluster "
        "layout, datasets, check outcomes, counters, latency percentiles.",
    )
    inspect.add_argument("recording", help="path to a recording JSON")
    inspect.add_argument(
        "--counters",
        action="store_true",
        help="also print every counter (not just the headline ones)",
    )
    inspect.add_argument(
        "--format",
        default="plain",
        choices=("plain", "json"),
        help="output format: human-readable tables or a JSON summary document",
    )

    replay = subparsers.add_parser(
        "replay",
        help="re-run a recorded scenario and diff the metrics snapshots",
        description="Re-run the scenario embedded in a recording (same spec, "
        "same seed) and report any snapshot difference. Zero diff = the "
        "determinism contract holds; differences exit 1.",
    )
    replay.add_argument("recording", help="path to a recording JSON")

    trace = subparsers.add_parser(
        "trace",
        help="render a traced run and write Perfetto-loadable trace JSON",
        description="Render a run's trace: span tree + Gantt in the "
        "terminal, Chrome trace-event JSON on disk (load it at "
        "https://ui.perfetto.dev). Accepts a recording with an embedded "
        "trace, or a scenario spec to run with tracing force-enabled.",
    )
    trace.add_argument(
        "source",
        help="a recording written by `run --record` (with a [trace] section) "
        "or a scenario spec (.toml or .json)",
    )
    trace.add_argument(
        "--out",
        metavar="PATH",
        help="where to write the Chrome trace JSON "
        "(default: ./<source stem>.trace.json)",
    )
    trace.add_argument(
        "--seed",
        type=int,
        help="override the spec's cluster seed (spec sources only)",
    )
    trace.add_argument(
        "--limit",
        type=int,
        default=80,
        help="maximum span-tree lines to print (default: 80)",
    )
    trace.add_argument(
        "--quiet",
        "-q",
        action="store_true",
        help="skip the terminal renderings; just write the trace file",
    )
    trace.add_argument(
        "--timeline-csv",
        metavar="PATH",
        help="also export the timeline series as CSV (one column per series, "
        "one row per sample instant; byte-stable like the Chrome export)",
    )

    sweep = subparsers.add_parser(
        "sweep",
        help="run a spec over a parameter grid, one recording per cell",
        description="Expand a base scenario spec over a parameter grid (its "
        "[sweep] section and/or --axis arguments), run every cell "
        "deterministically, and write the recordings plus a byte-stable "
        "manifest for `compare`. Exits 1 if any cell's checks failed.",
    )
    sweep.add_argument("spec", help="path to the base scenario spec (.toml or .json)")
    sweep.add_argument(
        "--axis",
        action="append",
        default=[],
        metavar="NAME=V1,V2,...",
        help="add or replace a grid axis (an alias like strategy/seed/nodes/"
        "workload_scale/policy, or a dotted spec path); repeatable",
    )
    sweep.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="worker processes (default: the spec's sweep.jobs, else 1); "
        "results are byte-identical at any value",
    )
    sweep.add_argument(
        "--out-dir",
        metavar="DIR",
        help="directory for recordings + manifest (default: sweep_<scenario>)",
    )
    sweep.add_argument(
        "--quiet",
        "-q",
        action="store_true",
        help="print only the manifest path and failing cells",
    )

    compare = subparsers.add_parser(
        "compare",
        help="diff N recordings (or a sweep manifest) head to head",
        description="Load recordings (or one sweep manifest), align them on "
        "the shared simulated-time grid, and print comparison tables and "
        "per-pair deltas. --gate turns relative-delta thresholds into a CI "
        "regression gate (exit 1 on breach); --html writes a self-contained "
        "dashboard.",
    )
    compare.add_argument(
        "sources",
        nargs="+",
        metavar="RECORDING",
        help="recording files, or a single sweep manifest JSON",
    )
    compare.add_argument(
        "--baseline",
        metavar="CELL",
        help="cell label the deltas and gates compare against (default: first)",
    )
    compare.add_argument(
        "--gate",
        action="append",
        default=[],
        metavar="METRIC=DELTA",
        help="fail (exit 1) if a cell's metric moved past the signed relative "
        "delta vs the baseline, e.g. write_p99_ms[rebalance]=0.25 (may not "
        "grow >25%%) or ops_per_sec=-0.10 (may not drop >10%%); repeatable",
    )
    compare.add_argument(
        "--html",
        metavar="PATH",
        help="write the self-contained HTML dashboard here",
    )
    compare.add_argument(
        "--quiet",
        "-q",
        action="store_true",
        help="print only gate outcomes and the dashboard path",
    )

    lint = subparsers.add_parser(
        "lint",
        help="run reprolint, the invariant-enforcing static-analysis suite",
        description="Statically check determinism invariants, the event-bus "
        "contract, and registry keys (see docs/STATIC_ANALYSIS.md). "
        "Exits 1 if any violation is found.",
    )
    lint.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (default: src tests examples benchmarks)",
    )
    lint.add_argument(
        "--format",
        default="plain",
        choices=("plain", "github"),
        help="output format: plain path:line:col lines or GitHub annotations",
    )
    lint.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command is None:
        parser.print_help()
        return 2
    try:
        if args.command == "run":
            return _cmd_run(args)
        if args.command == "bench":
            return _cmd_bench(args)
        if args.command == "inspect":
            return _cmd_inspect(args)
        if args.command == "replay":
            return _cmd_replay(args)
        if args.command == "trace":
            return _cmd_trace(args)
        if args.command == "sweep":
            return _cmd_sweep(args)
        if args.command == "compare":
            return _cmd_compare(args)
        if args.command == "lint":
            return _cmd_lint(args)
    except ScenarioSpecError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    raise AssertionError(f"unhandled command {args.command!r}")  # pragma: no cover


# ---------------------------------------------------------------------------
# run
# ---------------------------------------------------------------------------


def _cmd_run(args: argparse.Namespace) -> int:
    spec = load_scenario(args.spec)
    result = run_scenario(
        spec, seed=args.seed, strategy=args.strategy, concurrency=args.concurrency
    )
    if args.quiet:
        for check in result.checks:
            if not check.passed:
                print(check.line())
        verdict = "OK" if result.passed else "FAILED"
        print(
            f"scenario {result.spec.name!r} {verdict}: {result.total_ops} ops, "
            f"nodes {result.nodes_before} -> {result.nodes_after}"
        )
    else:
        print(result.render())
    if args.record:
        path = write_recording(result, args.record)
        print(f"\nrecording written: {path}")
    return 0 if result.passed else 1


# ---------------------------------------------------------------------------
# bench
# ---------------------------------------------------------------------------


def _bench_plan(suite: str, scale: str) -> List[str]:
    from ..bench.micro import BENCHMARKS

    plan = []
    if suite in ("micro", "all"):
        plan.extend(f"micro:{name}" for name in BENCHMARKS)
    if suite in ("traffic", "all"):
        plan.append(f"experiment:traffic ({scale} scale)")
    if suite in ("autopilot", "all"):
        plan.append(f"experiment:autopilot ({scale} scale)")
    return plan


def _cmd_bench(args: argparse.Namespace) -> int:
    micro_only = {
        "--repeats": args.repeats is not None,
        "--check": bool(args.check),
        "--tolerance": args.tolerance is not None,
        "--write-baseline": bool(args.write_baseline),
    }
    if args.suite in ("traffic", "autopilot"):
        misused = [flag for flag, given in micro_only.items() if given]
        if misused:
            print(
                f"error: {', '.join(misused)} only apply to the micro suite "
                f"(--suite {args.suite} would silently ignore them)",
                file=sys.stderr,
            )
            return 2

    if args.dry_run:
        for entry in _bench_plan(args.suite, args.scale):
            print(entry)
        print(f"(dry run: {len(_bench_plan(args.suite, args.scale))} benchmarks selected)")
        return 0

    status = 0
    if args.suite in ("micro", "all"):
        from ..bench import micro

        micro_argv: List[str] = []
        if args.repeats is not None:
            micro_argv += ["--repeats", str(args.repeats)]
        if args.check:
            micro_argv += ["--check", args.check]
        if args.tolerance is not None:
            micro_argv += ["--tolerance", str(args.tolerance)]
        if args.write_baseline:
            micro_argv += ["--write-baseline", args.write_baseline]
        if args.artifact_dir:
            micro_argv += ["--artifact-dir", args.artifact_dir]
        status = micro.main(micro_argv)
    if args.suite in ("traffic", "autopilot", "all"):
        import time

        from ..bench import FULL, SMOKE, write_bench_artifact
        from ..bench import run_autopilot_experiment, run_traffic_experiment
        from ..bench.artifacts import traffic_artifact_payload

        scale = SMOKE if args.scale == "smoke" else FULL
        experiments = []
        if args.suite in ("traffic", "all"):
            # Artifact names keep continuity with the pre-CLI trajectory
            # (examples/traffic_storm.py wrote BENCH_traffic_storm.json).
            experiments.append(("traffic_storm", run_traffic_experiment))
        if args.suite in ("autopilot", "all"):
            experiments.append(("autopilot_storm", run_autopilot_experiment))
        for name, experiment in experiments:
            # Real wall-clock throughput is exactly what the perf trajectory
            # tracks (simulated ops/sec is seed-deterministic and never moves).
            wall_started = time.perf_counter()  # reprolint: allow[det-wall-clock] -- bench harness measures real elapsed time
            result = experiment(scale=scale)
            wall_seconds = time.perf_counter() - wall_started  # reprolint: allow[det-wall-clock] -- bench harness measures real elapsed time
            print(result.table())
            summary = getattr(result, "autopilot_summary", "")
            if summary:
                print(summary)
            payload = traffic_artifact_payload(name, result)
            # The trajectory's regression signal: real wall-clock throughput
            # (simulated ops/sec is seed-deterministic and never moves).
            payload["wall_seconds"] = wall_seconds
            payload["wall_ops_per_second"] = (
                result.total_ops / wall_seconds if wall_seconds > 0 else 0.0
            )
            path = write_bench_artifact(name, payload, args.artifact_dir)
            if path is not None:
                print(f"artifact written: {path}")
    return status


# ---------------------------------------------------------------------------
# inspect
# ---------------------------------------------------------------------------

#: Headline counters `inspect` always prints when present.
_HEADLINE_COUNTERS = (
    "ops.total",
    "ingest.records",
    "rebalance.started",
    "rebalance.completed",
    "autopilot.decision",
    "autopilot.rebalance.complete",
    "chaos.crash",
    "retry.routing_miss",
    "retry.backoff",
)


def _cmd_inspect(args: argparse.Namespace) -> int:
    from ..common.reporting import format_table
    from ..metrics.histogram import LatencyHistogram

    document = load_recording(args.recording)
    snapshot = snapshot_from_recording(document)
    scenario = document.get("scenario", {}).get("scenario", {})
    nodes = document.get("nodes", {})
    if args.format == "json":
        print(json.dumps(_inspect_summary(args, document, snapshot), indent=2, sort_keys=True))
        return 0
    print(
        f"recording of scenario {scenario.get('name')!r}: seed={document.get('seed')}, "
        f"nodes {nodes.get('before')} -> {nodes.get('after')}, "
        f"{document.get('total_ops')} ops in "
        f"{document.get('simulated_seconds', 0.0):.3f} simulated seconds"
    )

    describe: Dict[str, Any] = document.get("describe", {})
    datasets: Dict[str, Any] = describe.get("datasets", {})
    if datasets:
        print(
            f"\ncluster: {describe.get('nodes')} nodes, "
            f"{describe.get('partitions')} partitions, strategy={describe.get('strategy')}"
        )
        rows = [
            [
                name,
                info.get("records"),
                info.get("buckets"),
                info.get("bytes"),
                info.get("routing"),
            ]
            for name, info in sorted(datasets.items())
        ]
        print(format_table(["dataset", "records", "buckets", "bytes", "routing"], rows))

    checks = document.get("checks", [])
    if checks:
        print("\nchecks:")
        for check in checks:
            status = "PASS" if check.get("passed") else "FAIL"
            print(f"  {check.get('name')}: {status} ({check.get('detail')})")

    trace = document.get("trace")
    if trace is not None:
        print(
            f"\ntrace: {len(trace.get('spans', []))} span(s), "
            f"{len(trace.get('series', []))} series sampled every "
            f"{trace.get('interval_seconds')}s simulated "
            f"(render with `python -m repro trace {args.recording}`)"
        )

    chaos = document.get("chaos")
    if chaos is not None:
        print("\ninjected chaos events (simulated clock):")
        chaos_rows = [
            [
                f"{event.get('at', 0.0):.3f}s",
                event.get("event", "?"),
                ", ".join(
                    f"{key}={value}"
                    for key, value in sorted(event.items())
                    if key not in ("event", "at")
                ),
            ]
            for event in chaos.get("events", [])
        ]
        print(format_table(["at", "event", "details"], chaos_rows))
        faulted_site = chaos.get("faulted_site")
        if faulted_site is not None:
            line = f"chaos crash interrupted a rebalance at site {faulted_site!r}"
            recovery = chaos.get("recovery_seconds")
            if recovery is not None:
                line += f"; recovered in {recovery:.3f} simulated seconds"
            print(line)

    counter_rows = [
        [name, int(value)]
        for name, value in snapshot.counters.items()
        if args.counters or name in _HEADLINE_COUNTERS
    ]
    if counter_rows:
        print("\ncounters:" if args.counters else "\nheadline counters:")
        print(format_table(["counter", "value"], counter_rows))

    histogram_rows = []
    for key, snap in sorted(snapshot.histograms.items()):
        histogram = LatencyHistogram.from_snapshot(snap)
        if not histogram.count:
            continue
        summary = histogram.summary()
        histogram_rows.append(
            [
                key,
                int(summary["count"]),
                round(summary["p50"] * 1e3, 3),
                round(summary["p99"] * 1e3, 3),
                round(summary["max"] * 1e3, 3),
            ]
        )
    if histogram_rows:
        print("\nlatency histograms (ms):")
        print(
            format_table(["op[phase]", "count", "p50 (ms)", "p99 (ms)", "max (ms)"], histogram_rows)
        )
    return 0


def _inspect_summary(
    args: argparse.Namespace, document: Dict[str, Any], snapshot: Any
) -> Dict[str, Any]:
    """The ``inspect --format json`` document (stable keys, JSON-safe values)."""
    from ..metrics.histogram import LatencyHistogram

    scenario = document.get("scenario", {}).get("scenario", {})
    histograms: Dict[str, Any] = {}
    for key, snap in sorted(snapshot.histograms.items()):
        histogram = LatencyHistogram.from_snapshot(snap)
        if not histogram.count:
            continue
        summary = histogram.summary()
        histograms[key] = {
            "count": int(summary["count"]),
            "p50_ms": summary["p50"] * 1e3,
            "p99_ms": summary["p99"] * 1e3,
            "max_ms": summary["max"] * 1e3,
        }
    trace = document.get("trace")
    trace_summary = None
    if trace is not None:
        trace_summary = {
            "spans": len(trace.get("spans", [])),
            "series": sorted(series["name"] for series in trace.get("series", [])),
            "interval_seconds": trace.get("interval_seconds"),
        }
    chaos = document.get("chaos")
    chaos_summary = None
    if chaos is not None:
        chaos_summary = {
            "events": chaos.get("events", []),
            "faulted_site": chaos.get("faulted_site"),
            "recovery_seconds": chaos.get("recovery_seconds"),
        }
    return {
        "scenario": scenario.get("name"),
        "seed": document.get("seed"),
        "nodes": document.get("nodes", {}),
        "total_ops": document.get("total_ops"),
        "simulated_seconds": document.get("simulated_seconds"),
        "describe": document.get("describe", {}),
        "checks": document.get("checks", []),
        "counters": {
            name: int(value)
            for name, value in snapshot.counters.items()
            if args.counters or name in _HEADLINE_COUNTERS
        },
        "histograms": histograms,
        "trace": trace_summary,
        "chaos": chaos_summary,
    }


# ---------------------------------------------------------------------------
# trace
# ---------------------------------------------------------------------------


def _cmd_trace(args: argparse.Namespace) -> int:
    from ..trace import chrome_trace_json, render_gantt, render_span_tree

    source = Path(args.source)
    if not source.exists():
        print(f"error: no such file: {source}", file=sys.stderr)
        return 2

    # A recording embeds its trace; anything else is treated as a spec and
    # run with tracing force-enabled (the whole point of asking for a trace).
    document: Optional[Dict[str, Any]] = None
    if source.suffix == ".json":
        try:
            document = load_recording(source)
        except ScenarioSpecError:
            document = None

    if document is not None:
        payload = document.get("trace")
        if payload is None:
            print(
                f"error: {source} has no embedded trace; re-record with a "
                "[trace] section in the spec, or point `trace` at the spec "
                "itself to run it traced",
                file=sys.stderr,
            )
            return 2
        label = payload.get("scenario") or document.get("scenario", {}).get(
            "scenario", {}
        ).get("name")
    else:
        from dataclasses import replace as dc_replace

        from ..scenario import TraceSection

        spec = load_scenario(source)
        if spec.trace is None or not spec.trace.enabled:
            interval = spec.trace.sample_interval_seconds if spec.trace is not None else 0.25
            spec = dc_replace(
                spec, trace=TraceSection(enabled=True, sample_interval_seconds=interval)
            )
        print(f"running scenario {spec.name!r} with tracing enabled ...")
        result = run_scenario(spec, seed=args.seed)
        payload = result.trace
        label = spec.name
        if payload is None:  # pragma: no cover - defensive; trace was forced on
            print("error: the run produced no trace payload", file=sys.stderr)
            return 2

    if not args.quiet:
        print(
            f"trace of scenario {label!r}: {len(payload.get('spans', []))} span(s), "
            f"{len(payload.get('series', []))} series, seed={payload.get('seed')}"
        )
        tree_lines = render_span_tree(payload).splitlines()
        print("\nspan tree:")
        for line in tree_lines[: args.limit]:
            print(f"  {line}")
        if len(tree_lines) > args.limit:
            print(f"  … +{len(tree_lines) - args.limit} more span(s); raise --limit to see them")
        print("\ntimeline:")
        print(render_gantt(payload))
        print()

    out = Path(args.out) if args.out else Path(f"{source.stem}.trace.json")
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(chrome_trace_json(payload))
    print(f"chrome trace written: {out} (load it at https://ui.perfetto.dev)")
    if args.timeline_csv:
        from ..trace import timeline_csv

        csv_path = Path(args.timeline_csv)
        csv_path.parent.mkdir(parents=True, exist_ok=True)
        csv_path.write_text(timeline_csv(payload))
        print(
            f"timeline CSV written: {csv_path} "
            f"({len(payload.get('series', []))} series)"
        )
    return 0


# ---------------------------------------------------------------------------
# sweep
# ---------------------------------------------------------------------------


def _cmd_sweep(args: argparse.Namespace) -> int:
    from ..report import merge_axes, parse_axis_arg, run_sweep

    spec = load_scenario(args.spec)
    spec_axes = spec.sweep.axes if spec.sweep is not None else ()
    axes = merge_axes(spec_axes, [parse_axis_arg(argument) for argument in args.axis])
    if not axes:
        # Fail before the banner — run_sweep would raise the same complaint,
        # but only after printing a misleading empty-grid header.
        raise ScenarioSpecError(
            "sweep: no axes — declare a [sweep.axes] section in the spec or "
            "pass --axis NAME=VALUE,... on the command line"
        )
    jobs = args.jobs
    if jobs is None:
        jobs = spec.sweep.jobs if spec.sweep is not None else 1
    if jobs < 1:
        print("error: --jobs must be at least 1", file=sys.stderr)
        return 2
    out_dir = Path(args.out_dir) if args.out_dir else Path(f"sweep_{spec.name}")

    grid_size = 1
    for _, values in axes:
        grid_size *= len(values)
    if not args.quiet:
        print(
            f"sweep of scenario {spec.name!r}: "
            + " x ".join(f"{name}[{len(values)}]" for name, values in axes)
            + f" = {grid_size} cell(s), jobs={jobs}"
        )

    def progress(cell: Any, passed: bool) -> None:
        verdict = "OK" if passed else "FAILED"
        if not args.quiet or not passed:
            print(f"  cell {cell.cell_id}: {verdict}")

    manifest = run_sweep(spec, axes, out_dir, jobs=jobs, progress=progress)
    failed = [entry["id"] for entry in manifest["cells"] if not entry["passed"]]
    manifest_path = out_dir / "sweep.manifest.json"
    print(
        f"sweep {'FAILED' if failed else 'OK'}: "
        f"{len(manifest['cells']) - len(failed)}/{len(manifest['cells'])} cell(s) passed; "
        f"manifest written: {manifest_path}"
    )
    print(f"compare with: python -m repro compare {manifest_path}")
    return 1 if failed else 0


# ---------------------------------------------------------------------------
# compare
# ---------------------------------------------------------------------------


def _cmd_compare(args: argparse.Namespace) -> int:
    from ..report import (
        evaluate_gates,
        load_comparison,
        parse_gate_arg,
        render_comparison,
        render_dashboard,
    )

    # Parse gates before rendering anything: a typo'd --gate should fail
    # fast, not after 30 lines of tables.
    gates = dict(parse_gate_arg(argument) for argument in args.gate or [])
    comparison = load_comparison(args.sources)
    if not args.quiet:
        print(render_comparison(comparison, baseline=args.baseline))
    status = 0
    if gates:
        results = evaluate_gates(comparison, gates, baseline=args.baseline)
        if not args.quiet:
            print()
        for result in results:
            print(result.line())
        breached = sum(1 for result in results if not result.passed)
        print(f"gates: {len(results) - breached}/{len(results)} passed")
        if breached:
            status = 1
    if args.html:
        html_path = Path(args.html)
        html_path.parent.mkdir(parents=True, exist_ok=True)
        html_path.write_text(render_dashboard(comparison))
        print(f"dashboard written: {html_path}")
    return status


# ---------------------------------------------------------------------------
# lint
# ---------------------------------------------------------------------------


def _cmd_lint(args: argparse.Namespace) -> int:
    from ..analysis import RULE_CATALOG, render_report
    from ..analysis.engine import DEFAULT_ROOTS, discover, lint_paths

    if args.list_rules:
        width = max(len(rule) for rule in RULE_CATALOG)
        for rule, description in RULE_CATALOG.items():
            print(f"{rule:<{width}}  {description}")
        return 0
    paths = list(args.paths)
    if not paths:
        paths = [root for root in DEFAULT_ROOTS if Path(root).is_dir()]
        if not paths:
            print(
                "error: none of the default roots "
                f"({', '.join(DEFAULT_ROOTS)}) exist here; pass paths to lint",
                file=sys.stderr,
            )
            return 2
    try:
        files = discover(paths)
        violations = lint_paths(paths)
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(render_report(violations, format=args.format, files_checked=len(files)))
    return 1 if violations else 0


# ---------------------------------------------------------------------------
# replay
# ---------------------------------------------------------------------------


def _cmd_replay(args: argparse.Namespace) -> int:
    document = load_recording(args.recording)
    spec = spec_from_recording(document)
    recorded = snapshot_from_recording(document)
    seed = document.get("seed")
    print(f"replaying scenario {spec.name!r} with seed={seed} ...")
    result = run_scenario(spec, seed=seed)
    differences = diff_snapshots(recorded, result.snapshot)
    differences.extend(diff_traces(document.get("trace"), result.trace))
    replayed_chaos = None
    if result.chaos_events:
        replayed_chaos = {
            "events": [dict(event) for event in result.chaos_events],
            "faulted_site": result.faulted_site,
            "recovery_seconds": result.recovery_seconds,
        }
    differences.extend(diff_chaos(document.get("chaos"), replayed_chaos))
    if differences:
        print(f"replay DIVERGED: {len(differences)} difference(s) vs {args.recording}")
        for line in differences:
            print(f"  {line}")
        return 1
    traced = document.get("trace") is not None
    extras = " and trace" if traced else ""
    if document.get("chaos") is not None:
        extras += " and chaos log"
    print(
        f"replay OK: snapshot{extras} identical to "
        f"{Path(args.recording).name} "
        f"({len(recorded.counters)} counters, {len(recorded.histograms)} histograms, "
        f"{recorded.simulated_seconds:.3f} simulated seconds)"
    )
    return 0
