"""Command-line interface: ``python -m repro`` (see :mod:`repro.cli.main`).

The CLI is a thin shell over :mod:`repro.scenario` and :mod:`repro.bench` —
``main(argv)`` is importable so examples and tests can drive subcommands
in-process::

    from repro.cli import main

    exit_code = main(["run", "examples/scenarios/traffic_storm.toml"])
"""

from .main import build_parser, main

__all__ = ["build_parser", "main"]
