"""Scan reconciliation across LSM components.

A range scan over an LSM-tree must reconcile entries with identical keys from
multiple components, preferring entries from newer components, and must drop
tombstones from the final result (Section II-B).  :func:`merge_scan` does this
with a priority queue, exactly as the paper describes; it is reused by the
bucketed LSM-tree's merge-sorted scan mode and by merges themselves.
"""

from __future__ import annotations

import heapq
from typing import Any, Iterable, Iterator, List, Optional, Sequence, Tuple

from .entry import Entry


def _sort_key(key: Any) -> Tuple:
    if isinstance(key, tuple):
        return key
    return (key,)


def merge_scan(
    sources: Sequence[Iterable[Entry]],
    include_tombstones: bool = False,
) -> Iterator[Entry]:
    """Merge already-sorted entry streams, reconciling duplicate keys.

    ``sources`` must be ordered **newest first** (the LSM component order):
    when two streams produce the same key, the entry from the earlier stream
    wins regardless of sequence numbers, matching how an LSM-tree treats its
    component list as the authority on recency.  Within correct usage the two
    orderings agree; tests exercise both.

    Tombstoned keys are suppressed unless ``include_tombstones`` is set (a
    merge that is *not* merging the oldest component must keep tombstones so
    they continue to shadow older components).
    """
    iterators = [iter(source) for source in sources]
    heap: List[Tuple[Tuple, int, int, Entry]] = []
    counter = 0
    for priority, iterator in enumerate(iterators):
        for entry in iterator:
            heapq.heappush(heap, (_sort_key(entry.key), priority, counter, entry))
            counter += 1
            break
    # Track which iterator each heap item came from so we can pull its next
    # element lazily; storing (key, priority) keeps newest-first tie-breaking.
    active: List[Iterator[Entry]] = iterators

    def push_next(priority: int) -> None:
        nonlocal counter
        for entry in active[priority]:
            heapq.heappush(heap, (_sort_key(entry.key), priority, counter, entry))
            counter += 1
            break

    last_key: Optional[Tuple] = None
    emitted_for_key = False
    while heap:
        key, priority, _, entry = heapq.heappop(heap)
        push_next(priority)
        if key != last_key:
            last_key = key
            emitted_for_key = False
        if emitted_for_key:
            continue
        emitted_for_key = True
        if entry.tombstone and not include_tombstones:
            continue
        yield entry


def merge_entries(
    sources: Sequence[Iterable[Entry]],
    drop_tombstones: bool,
) -> List[Entry]:
    """Materialise a reconciled merge of ``sources`` (newest first).

    Used by LSM merges: when the merge includes the oldest component of the
    tree, ``drop_tombstones`` should be True so deleted records physically
    disappear; otherwise tombstones are preserved.
    """
    return list(merge_scan(sources, include_tombstones=not drop_tombstones))


def count_live_entries(sources: Sequence[Iterable[Entry]]) -> int:
    """Number of live (non-deleted) keys visible across ``sources``."""
    return sum(1 for _ in merge_scan(sources, include_tombstones=False))
