"""Record and entry types used by the LSM storage substrate.

An *entry* is what an LSM component stores: a key, an optional value, a
sequence number that orders writes to the same key, and a tombstone flag for
deletes (LSM-trees implement deletes out-of-place by writing a tombstone that
shadows older entries; the record physically disappears only when a merge
drops it, Section II-B).
"""

from __future__ import annotations

from typing import Any, Optional

# Rough per-field byte estimates used when a record does not carry an explicit
# size.  These only need to be stable, not exact: the cost model cares about
# relative sizes of buckets and components.
_BASE_RECORD_OVERHEAD = 16


def estimate_value_size(value: Any) -> int:
    """Estimate the serialized size in bytes of a record value.

    Supports the value shapes used throughout the library: ``None`` (key-only
    indexes), numbers, strings, bytes, and flat dict/tuple/list rows such as
    the TPC-H tuples produced by :mod:`repro.tpch.datagen`.

    The exact-type checks up front are a fast path for the overwhelmingly
    common cases (this function walks every ingested row at least twice);
    subclasses fall through to the original ``isinstance`` chain with the
    same precedence, so e.g. ``bool`` still counts as 1 byte, not 8.
    """
    kind = type(value)
    if kind is int:
        return 8
    if kind is str:
        return len(value)
    if kind is float:
        return 8
    if kind is dict:
        total = 0
        for field_name, field_value in value.items():
            total += len(str(field_name)) + estimate_value_size(field_value)
        return total
    if value is None:
        return 0
    if isinstance(value, bool):
        return 1
    if isinstance(value, int):
        return 8
    if isinstance(value, float):
        return 8
    if isinstance(value, str):
        return len(value)
    if isinstance(value, bytes):
        return len(value)
    if isinstance(value, dict):
        total = 0
        for field_name, field_value in value.items():
            total += len(str(field_name)) + estimate_value_size(field_value)
        return total
    if isinstance(value, (tuple, list)):
        return sum(estimate_value_size(item) for item in value)
    # Fall back to the repr length for exotic values; better than raising in
    # the middle of an ingestion run.
    return len(repr(value))


def estimate_key_size(key: Any) -> int:
    """Estimate the serialized size in bytes of a key."""
    kind = type(key)
    if kind is int:
        return 8
    if kind is str:
        return len(key)
    if kind is tuple:
        return sum(estimate_key_size(part) for part in key)
    if isinstance(key, tuple):
        return sum(estimate_key_size(part) for part in key)
    if isinstance(key, str):
        return len(key)
    if isinstance(key, bytes):
        return len(key)
    return 8


class Entry:
    """One versioned key/value pair stored in an LSM component.

    ``seqnum`` is assigned by the owning LSM-tree and strictly increases with
    write order within one partition; reconciliation across components always
    prefers the entry with the larger sequence number.

    A hand-rolled ``__slots__`` value class rather than a frozen dataclass:
    entry construction sits on the per-record write path, and the generated
    frozen ``__init__`` routes every field through ``object.__setattr__``.
    Entries are immutable by convention — nothing in the storage engine
    rewrites one after construction.
    """

    __slots__ = ("key", "value", "seqnum", "tombstone", "_size_bytes")

    def __init__(self, key: Any, value: Any, seqnum: int, tombstone: bool = False) -> None:
        self.key = key
        self.value = value
        self.seqnum = seqnum
        self.tombstone = tombstone
        self._size_bytes: Optional[int] = None

    @property
    def size_bytes(self) -> int:
        """Estimated on-disk size of this entry.

        Memoized: an entry's size is read on every memory-component put,
        flush, merge, and scan it participates in, and the estimate walks the
        whole value.
        """
        size = self._size_bytes
        if size is None:
            size = self._size_bytes = (
                _BASE_RECORD_OVERHEAD
                + estimate_key_size(self.key)
                + (0 if self.tombstone else estimate_value_size(self.value))
            )
        return size

    def shadows(self, other: "Entry") -> bool:
        """True if this entry supersedes ``other`` (same key, newer write)."""
        return self.key == other.key and self.seqnum >= other.seqnum

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Entry):
            return NotImplemented
        return (
            self.key == other.key
            and self.value == other.value
            and self.seqnum == other.seqnum
            and self.tombstone == other.tombstone
        )

    def __hash__(self) -> int:
        # Same semantics the frozen dataclass generated: a tuple hash over
        # the fields (and therefore a TypeError for dict-valued entries).
        return hash((self.key, self.value, self.seqnum, self.tombstone))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        kind = "DEL" if self.tombstone else "PUT"
        return f"Entry({kind} {self.key!r}@{self.seqnum})"


def newest(first: Optional[Entry], second: Optional[Entry]) -> Optional[Entry]:
    """Return whichever entry is newer, treating ``None`` as absent."""
    if first is None:
        return second
    if second is None:
        return first
    return first if first.seqnum >= second.seqnum else second
