"""Record and entry types used by the LSM storage substrate.

An *entry* is what an LSM component stores: a key, an optional value, a
sequence number that orders writes to the same key, and a tombstone flag for
deletes (LSM-trees implement deletes out-of-place by writing a tombstone that
shadows older entries; the record physically disappears only when a merge
drops it, Section II-B).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

# Rough per-field byte estimates used when a record does not carry an explicit
# size.  These only need to be stable, not exact: the cost model cares about
# relative sizes of buckets and components.
_BASE_RECORD_OVERHEAD = 16


def estimate_value_size(value: Any) -> int:
    """Estimate the serialized size in bytes of a record value.

    Supports the value shapes used throughout the library: ``None`` (key-only
    indexes), numbers, strings, bytes, and flat dict/tuple/list rows such as
    the TPC-H tuples produced by :mod:`repro.tpch.datagen`.
    """
    if value is None:
        return 0
    if isinstance(value, bool):
        return 1
    if isinstance(value, int):
        return 8
    if isinstance(value, float):
        return 8
    if isinstance(value, str):
        return len(value)
    if isinstance(value, bytes):
        return len(value)
    if isinstance(value, dict):
        total = 0
        for field_name, field_value in value.items():
            total += len(str(field_name)) + estimate_value_size(field_value)
        return total
    if isinstance(value, (tuple, list)):
        return sum(estimate_value_size(item) for item in value)
    # Fall back to the repr length for exotic values; better than raising in
    # the middle of an ingestion run.
    return len(repr(value))


def estimate_key_size(key: Any) -> int:
    """Estimate the serialized size in bytes of a key."""
    if isinstance(key, tuple):
        return sum(estimate_key_size(part) for part in key)
    if isinstance(key, str):
        return len(key)
    if isinstance(key, bytes):
        return len(key)
    return 8


@dataclass(frozen=True)
class Entry:
    """One versioned key/value pair stored in an LSM component.

    ``seqnum`` is assigned by the owning LSM-tree and strictly increases with
    write order within one partition; reconciliation across components always
    prefers the entry with the larger sequence number.
    """

    key: Any
    value: Any
    seqnum: int
    tombstone: bool = False

    @property
    def size_bytes(self) -> int:
        """Estimated on-disk size of this entry."""
        return (
            _BASE_RECORD_OVERHEAD
            + estimate_key_size(self.key)
            + (0 if self.tombstone else estimate_value_size(self.value))
        )

    def shadows(self, other: "Entry") -> bool:
        """True if this entry supersedes ``other`` (same key, newer write)."""
        return self.key == other.key and self.seqnum >= other.seqnum

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        kind = "DEL" if self.tombstone else "PUT"
        return f"Entry({kind} {self.key!r}@{self.seqnum})"


def newest(first: Optional[Entry], second: Optional[Entry]) -> Optional[Entry]:
    """Return whichever entry is newer, treating ``None`` as absent."""
    if first is None:
        return second
    if second is None:
        return first
    return first if first.seqnum >= second.seqnum else second
