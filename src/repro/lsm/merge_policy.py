"""LSM merge policies.

AsterixDB's experiments use a size-tiered ("concurrent"/tiering-like) policy
with a size ratio of 1.2 (Section VI-A): *"This policy merges a sequence of
components when the total size of the younger components is 1.2 times larger
than that of the oldest component in the sequence."*  That policy is the
default here; a no-merge policy and a full-merge (leveling-like) policy are
provided for tests and ablations.
"""

from __future__ import annotations

from typing import List, Optional, Protocol, Sequence


class MergeCandidate:
    """A contiguous run of component indices selected for merging.

    Indices refer to positions in the component list ordered **newest first**
    (the order an LSM-tree keeps them in); a merge always takes a contiguous
    suffix-or-infix so the ordering invariant between components is preserved.
    """

    def __init__(self, start: int, end: int) -> None:
        if end <= start:
            raise ValueError("a merge candidate must contain at least two components")
        self.start = start
        self.end = end

    @property
    def count(self) -> int:
        return self.end - self.start

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"MergeCandidate([{self.start}, {self.end}))"


class MergePolicy(Protocol):
    """Decides which disk components, if any, should be merged next."""

    def select(self, component_sizes: Sequence[int]) -> Optional[MergeCandidate]:
        """Return the components to merge, or ``None`` if no merge is needed.

        ``component_sizes`` lists component sizes in bytes, newest first.
        """
        ...  # pragma: no cover - protocol


class SizeTieredMergePolicy:
    """The tiering policy used by the paper's experiments.

    Scanning from the oldest component towards newer ones, the policy finds
    the longest suffix ``[i, n)`` (in oldest-first order) such that the total
    size of the components *younger* than the oldest one in the suffix is at
    least ``size_ratio`` times the size of that oldest component, and the
    suffix has at least ``min_components`` members.
    """

    def __init__(
        self,
        size_ratio: float = 1.2,
        min_components: int = 2,
        max_components: int = 0,
    ) -> None:
        if size_ratio <= 0:
            raise ValueError("size_ratio must be positive")
        if min_components < 2:
            raise ValueError("min_components must be at least 2")
        if max_components < 0:
            raise ValueError("max_components must be non-negative")
        self.size_ratio = size_ratio
        self.min_components = min_components
        self.max_components = max_components

    def select(self, component_sizes: Sequence[int]) -> Optional[MergeCandidate]:
        n = len(component_sizes)
        if n < self.min_components:
            return None
        # component_sizes is newest-first; walk candidate oldest components
        # from the very oldest (index n-1) towards newer ones.
        for oldest_index in range(n - 1, 0, -1):
            younger_total = sum(component_sizes[:oldest_index])
            oldest_size = component_sizes[oldest_index]
            count = oldest_index + 1
            if count < self.min_components:
                break
            if self.max_components and count > self.max_components:
                continue
            if younger_total >= self.size_ratio * oldest_size:
                return MergeCandidate(0, oldest_index + 1)
        return None


class NoMergePolicy:
    """Never merges; used to isolate flush behaviour in unit tests."""

    def select(self, component_sizes: Sequence[int]) -> Optional[MergeCandidate]:
        return None


class FullMergePolicy:
    """Always merges everything into one component once ``threshold`` is hit.

    A simple leveling-like baseline used by ablation benchmarks to show that
    the rebalance design is merge-policy agnostic.
    """

    def __init__(self, threshold: int = 2) -> None:
        if threshold < 2:
            raise ValueError("threshold must be at least 2")
        self.threshold = threshold

    def select(self, component_sizes: Sequence[int]) -> Optional[MergeCandidate]:
        if len(component_sizes) >= self.threshold:
            return MergeCandidate(0, len(component_sizes))
        return None


def make_merge_policy(
    name: str = "size-tiered",
    size_ratio: float = 1.2,
    min_components: int = 2,
    max_components: int = 0,
) -> MergePolicy:
    """Factory used by configuration code and benchmarks."""
    normalized = name.lower().replace("_", "-")
    if normalized in ("size-tiered", "tiered", "tiering"):
        return SizeTieredMergePolicy(
            size_ratio=size_ratio,
            min_components=min_components,
            max_components=max_components,
        )
    if normalized in ("none", "no-merge"):
        return NoMergePolicy()
    if normalized in ("full", "leveling", "full-merge"):
        return FullMergePolicy(threshold=max(2, min_components))
    raise ValueError(f"unknown merge policy {name!r}")


def select_components(policy: MergePolicy, sizes: List[int]) -> Optional[MergeCandidate]:
    """Convenience wrapper that validates the policy's answer.

    Guards against a buggy policy returning an out-of-range candidate, which
    would silently corrupt the component list ordering.
    """
    candidate = policy.select(sizes)
    if candidate is None:
        return None
    if candidate.start < 0 or candidate.end > len(sizes):
        raise ValueError(f"merge policy returned out-of-range candidate {candidate!r}")
    return candidate
