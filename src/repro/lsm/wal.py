"""Write-ahead logging.

Two log flavours exist in the system, both modelled here:

* Each partition has a **data WAL** recording every write applied to its
  indexes.  During a rebalance, the log records of concurrent writes to a
  moving bucket are *replicated* to the destination partition (Section V-A,
  "Preparing for Concurrent Writes"); the destination replays them into the
  memory components that hold rebalance writes.
* The Cluster Controller has a **metadata log** holding the BEGIN / COMMIT /
  DONE records that drive the rebalance two-phase commit and its recovery
  cases (Section V-D).

The simulator keeps logs in memory but distinguishes *forced* records
(guaranteed durable before the call returns) from unforced ones, because the
recovery analysis depends only on which records were forced before a crash.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Dict, Iterator, List, Optional

_lsn_counter = itertools.count(1)


class LogRecordType(Enum):
    """Kinds of log records used by the data and metadata logs."""

    INSERT = "insert"
    DELETE = "delete"
    UPSERT = "upsert"
    # Metadata (CC) records for the rebalance protocol.
    REBALANCE_BEGIN = "rebalance_begin"
    REBALANCE_COMMIT = "rebalance_commit"
    REBALANCE_DONE = "rebalance_done"
    REBALANCE_ABORT = "rebalance_abort"


DATA_RECORD_TYPES = frozenset(
    {LogRecordType.INSERT, LogRecordType.DELETE, LogRecordType.UPSERT}
)


@dataclass(frozen=True)
class LogRecord:
    """One log record.

    ``payload`` carries the record key/value for data records, or protocol
    details (rebalance id, target nodes) for metadata records.
    """

    lsn: int
    record_type: LogRecordType
    dataset: str
    partition_id: Optional[int]
    payload: Dict[str, Any] = field(default_factory=dict)
    forced: bool = False

    @property
    def is_data_record(self) -> bool:
        return self.record_type in DATA_RECORD_TYPES


class WriteAheadLog:
    """An append-only log with explicit force points.

    ``crash()`` truncates the log back to the last forced record, modelling a
    node failure that loses unforced tail records; recovery code then replays
    what survived.
    """

    def __init__(self, owner: str = ""):
        self.owner = owner
        self._records: List[LogRecord] = []
        self._forced_upto = 0  # index one past the last durable record
        self._bytes_appended = 0
        self._bytes_forced = 0

    def __len__(self) -> int:
        return len(self._records)

    @property
    def bytes_appended(self) -> int:
        """Total bytes ever appended (for cost accounting)."""
        return self._bytes_appended

    @property
    def bytes_forced(self) -> int:
        return self._bytes_forced

    def append(
        self,
        record_type: LogRecordType,
        dataset: str,
        partition_id: Optional[int] = None,
        payload: Optional[Dict[str, Any]] = None,
        force: bool = False,
    ) -> LogRecord:
        """Append a record; if ``force`` is set the whole log tail is forced."""
        record = LogRecord(
            lsn=next(_lsn_counter),
            record_type=record_type,
            dataset=dataset,
            partition_id=partition_id,
            payload=dict(payload or {}),
            forced=force,
        )
        self._records.append(record)
        self._bytes_appended += self._estimate_size(record)
        if force:
            self.force()
        return record

    def force(self) -> None:
        """Make every appended record durable (an fsync of the log tail)."""
        while self._forced_upto < len(self._records):
            record = self._records[self._forced_upto]
            self._bytes_forced += self._estimate_size(record)
            self._forced_upto += 1

    def crash(self) -> int:
        """Discard unforced tail records, as a crash would; return count lost."""
        lost = len(self._records) - self._forced_upto
        del self._records[self._forced_upto:]
        return lost

    def records(self, durable_only: bool = False) -> List[LogRecord]:
        """Return the log contents (optionally only the durable prefix)."""
        if durable_only:
            return list(self._records[: self._forced_upto])
        return list(self._records)

    def iter_dataset(
        self, dataset: str, durable_only: bool = False
    ) -> Iterator[LogRecord]:
        """Iterate records for one dataset in LSN order."""
        for record in self.records(durable_only=durable_only):
            if record.dataset == dataset:
                yield record

    def tail_since(self, lsn: int) -> List[LogRecord]:
        """Records with LSN strictly greater than ``lsn`` (for replication)."""
        return [record for record in self._records if record.lsn > lsn]

    def last_lsn(self) -> int:
        """LSN of the newest record, or 0 for an empty log."""
        return self._records[-1].lsn if self._records else 0

    @staticmethod
    def _estimate_size(record: LogRecord) -> int:
        base = 32
        for key, value in record.payload.items():
            base += len(str(key)) + len(str(value))
        return base

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"WriteAheadLog(owner={self.owner!r}, records={len(self._records)})"
