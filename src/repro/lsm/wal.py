"""Write-ahead logging.

Two log flavours exist in the system, both modelled here:

* Each partition has a **data WAL** recording every write applied to its
  indexes.  During a rebalance, the log records of concurrent writes to a
  moving bucket are *replicated* to the destination partition (Section V-A,
  "Preparing for Concurrent Writes"); the destination replays them into the
  memory components that hold rebalance writes.
* The Cluster Controller has a **metadata log** holding the BEGIN / COMMIT /
  DONE records that drive the rebalance two-phase commit and its recovery
  cases (Section V-D).

The simulator keeps logs in memory but distinguishes *forced* records
(guaranteed durable before the call returns) from unforced ones, because the
recovery analysis depends only on which records were forced before a crash.
"""

from __future__ import annotations

import itertools
from enum import Enum
from typing import Any, Dict, Iterator, List, Optional

_lsn_counter = itertools.count(1)


class LogRecordType(Enum):
    """Kinds of log records used by the data and metadata logs."""

    INSERT = "insert"
    DELETE = "delete"
    UPSERT = "upsert"
    # Metadata (CC) records for the rebalance protocol.
    REBALANCE_BEGIN = "rebalance_begin"
    REBALANCE_COMMIT = "rebalance_commit"
    REBALANCE_DONE = "rebalance_done"
    REBALANCE_ABORT = "rebalance_abort"


DATA_RECORD_TYPES = frozenset(
    {LogRecordType.INSERT, LogRecordType.DELETE, LogRecordType.UPSERT}
)


class LogRecord:
    """One log record.

    ``payload`` carries the record key/value for data records, or protocol
    details (rebalance id, target nodes) for metadata records.  A
    ``__slots__`` value class (immutable by convention) because one record is
    appended per applied write — the frozen-dataclass constructor was
    measurable on the ingest path.
    """

    __slots__ = ("lsn", "record_type", "dataset", "partition_id", "payload", "forced")

    def __init__(
        self,
        lsn: int,
        record_type: LogRecordType,
        dataset: str,
        partition_id: Optional[int],
        payload: Optional[Dict[str, Any]] = None,
        forced: bool = False,
    ) -> None:
        self.lsn = lsn
        self.record_type = record_type
        self.dataset = dataset
        self.partition_id = partition_id
        self.payload = payload if payload is not None else {}
        self.forced = forced

    @property
    def is_data_record(self) -> bool:
        return self.record_type in DATA_RECORD_TYPES

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, LogRecord):
            return NotImplemented
        return (
            self.lsn == other.lsn
            and self.record_type == other.record_type
            and self.dataset == other.dataset
            and self.partition_id == other.partition_id
            and self.payload == other.payload
            and self.forced == other.forced
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"LogRecord(lsn={self.lsn}, {self.record_type.value}, "
            f"{self.dataset!r}/p{self.partition_id})"
        )


class WriteAheadLog:
    """An append-only log with explicit force points.

    ``crash()`` truncates the log back to the last forced record, modelling a
    node failure that loses unforced tail records; recovery code then replays
    what survived.
    """

    def __init__(self, owner: str = "") -> None:
        self.owner = owner
        self._records: List[LogRecord] = []
        self._forced_upto = 0  # index one past the last durable record
        self._bytes_appended = 0
        self._bytes_forced = 0
        #: Index one past the last record folded into ``_bytes_appended``.
        #: Sizing walks the whole payload (str() of the record value), so the
        #: append hot path defers it; readers settle the tail on demand and
        #: observe exactly the same totals.
        self._sized_upto = 0

    def __len__(self) -> int:
        return len(self._records)

    def _settle_sizes(self) -> None:
        """Fold not-yet-sized records into the appended-bytes total."""
        while self._sized_upto < len(self._records):
            self._bytes_appended += self._estimate_size(self._records[self._sized_upto])
            self._sized_upto += 1

    @property
    def bytes_appended(self) -> int:
        """Total bytes ever appended (for cost accounting)."""
        self._settle_sizes()
        return self._bytes_appended

    @property
    def bytes_forced(self) -> int:
        return self._bytes_forced

    def append(
        self,
        record_type: LogRecordType,
        dataset: str,
        partition_id: Optional[int] = None,
        payload: Optional[Dict[str, Any]] = None,
        force: bool = False,
    ) -> LogRecord:
        """Append a record; if ``force`` is set the whole log tail is forced."""
        record = LogRecord(
            lsn=next(_lsn_counter),
            record_type=record_type,
            dataset=dataset,
            partition_id=partition_id,
            # Callers pass freshly built payload dicts; storing them without
            # another shallow copy keeps the append path allocation-light.
            payload=payload if payload is not None else {},
            forced=force,
        )
        self._records.append(record)
        if force:
            self.force()
        return record

    def force(self) -> None:
        """Make every appended record durable (an fsync of the log tail)."""
        while self._forced_upto < len(self._records):
            record = self._records[self._forced_upto]
            self._bytes_forced += self._estimate_size(record)
            self._forced_upto += 1

    def crash(self) -> int:
        """Discard unforced tail records, as a crash would; return count lost.

        The lost records still count into ``bytes_appended`` (they *were*
        appended), so their sizes are settled before the tail is dropped.
        """
        self._settle_sizes()
        lost = len(self._records) - self._forced_upto
        del self._records[self._forced_upto:]
        self._sized_upto = len(self._records)
        return lost

    def records(self, durable_only: bool = False) -> List[LogRecord]:
        """Return the log contents (optionally only the durable prefix)."""
        if durable_only:
            return list(self._records[: self._forced_upto])
        return list(self._records)

    def iter_dataset(
        self, dataset: str, durable_only: bool = False
    ) -> Iterator[LogRecord]:
        """Iterate records for one dataset in LSN order."""
        for record in self.records(durable_only=durable_only):
            if record.dataset == dataset:
                yield record

    def tail_since(self, lsn: int) -> List[LogRecord]:
        """Records with LSN strictly greater than ``lsn`` (for replication)."""
        return [record for record in self._records if record.lsn > lsn]

    def last_lsn(self) -> int:
        """LSN of the newest record, or 0 for an empty log."""
        return self._records[-1].lsn if self._records else 0

    @staticmethod
    def _estimate_size(record: LogRecord) -> int:
        base = 32
        for key, value in record.payload.items():
            base += len(str(key)) + len(str(value))
        return base

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"WriteAheadLog(owner={self.owner!r}, records={len(self._records)})"
