"""Directory metadata ("manifest") files.

Algorithm 1 (bucket split) and the rebalance finalization phase both end with
"force a directory metadata file to disk", which is what makes a split or a
bucket install/remove durable and recoverable.  :class:`Manifest` models that
metadata file for one index: it records the set of valid buckets and, per
bucket, the list of valid component ids, plus the lazy-cleanup filters that
secondary indexes attach to their components (Section V-C).

The manifest distinguishes the *volatile* state (what the running index
believes) from the *durable* state (the last forced snapshot); a crash reverts
to the durable state, which is how partially-split buckets and uncommitted
rebalance buckets get cleaned up on recovery.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple


@dataclass
class BucketManifestEntry:
    """Durable description of one bucket of a bucketed index."""

    hash_prefix: int
    depth: int
    component_ids: List[int] = field(default_factory=list)

    @property
    def bucket_id(self) -> Tuple[int, int]:
        return (self.hash_prefix, self.depth)


@dataclass
class ManifestState:
    """The full durable state of one index."""

    #: Valid buckets keyed by (hash_prefix, depth).
    buckets: Dict[Tuple[int, int], BucketManifestEntry] = field(default_factory=dict)
    #: Component ids that belong to the index but are not bucketed
    #: (secondary indexes store all buckets together).
    component_ids: List[int] = field(default_factory=list)
    #: Lazy-cleanup filters: (hash_prefix, depth) pairs whose entries must be
    #: ignored by queries until the next merge rewrites the components.
    invalidated_buckets: Set[Tuple[int, int]] = field(default_factory=set)
    #: Ids of component lists received by an in-flight rebalance (invisible to
    #: queries until commit).
    pending_received: List[int] = field(default_factory=list)


class Manifest:
    """Volatile + durable metadata for one index, with an explicit force step."""

    def __init__(self, index_name: str) -> None:
        self.index_name = index_name
        self._volatile = ManifestState()
        self._durable = ManifestState()
        self.force_count = 0

    # -- volatile mutations -------------------------------------------------

    @property
    def volatile(self) -> ManifestState:
        return self._volatile

    @property
    def durable(self) -> ManifestState:
        return self._durable

    def add_bucket(self, hash_prefix: int, depth: int, component_ids: Optional[List[int]] = None) -> None:
        entry = BucketManifestEntry(hash_prefix, depth, list(component_ids or []))
        self._volatile.buckets[entry.bucket_id] = entry

    def remove_bucket(self, hash_prefix: int, depth: int) -> None:
        self._volatile.buckets.pop((hash_prefix, depth), None)

    def set_bucket_components(self, hash_prefix: int, depth: int, component_ids: List[int]) -> None:
        key = (hash_prefix, depth)
        if key not in self._volatile.buckets:
            self.add_bucket(hash_prefix, depth, component_ids)
        else:
            self._volatile.buckets[key].component_ids = list(component_ids)

    def set_components(self, component_ids: List[int]) -> None:
        """Record the flat component list of an unbucketed (secondary) index."""
        self._volatile.component_ids = list(component_ids)

    def invalidate_bucket(self, hash_prefix: int, depth: int) -> None:
        """Mark a bucket's entries as logically deleted (lazy cleanup)."""
        self._volatile.invalidated_buckets.add((hash_prefix, depth))

    def clear_invalidation(self, hash_prefix: int, depth: int) -> None:
        self._volatile.invalidated_buckets.discard((hash_prefix, depth))

    def add_pending_received(self, list_id: int) -> None:
        if list_id not in self._volatile.pending_received:
            self._volatile.pending_received.append(list_id)

    def remove_pending_received(self, list_id: int) -> None:
        if list_id in self._volatile.pending_received:
            self._volatile.pending_received.remove(list_id)

    # -- durability ---------------------------------------------------------

    def force(self) -> None:
        """Persist the volatile state (the "force metadata file" step)."""
        self._durable = copy.deepcopy(self._volatile)
        self.force_count += 1

    def crash_and_recover(self) -> ManifestState:
        """Simulate a crash: the volatile state reverts to the durable one."""
        self._volatile = copy.deepcopy(self._durable)
        return self._volatile

    def valid_bucket_ids(self, durable: bool = False) -> Set[Tuple[int, int]]:
        state = self._durable if durable else self._volatile
        return set(state.buckets.keys())

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Manifest(index={self.index_name!r}, buckets={len(self._volatile.buckets)}, "
            f"forced={self.force_count})"
        )
