"""Storage-activity counters.

Every LSM-tree accumulates a :class:`StorageStats` describing the physical
work it performed (bytes flushed, merged, read, records parsed...).  The
cluster cost model (:mod:`repro.cluster.cost_model`) converts these counters
into simulated seconds; keeping the two concerns separate lets unit tests
assert on raw work and lets benchmarks swap cost parameters without touching
the storage engine.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class StorageStats:
    """Counters of physical storage work performed by one LSM-tree.

    ``add``/``snapshot``/``diff`` run on the per-operation cost-accounting
    path (every point lookup snapshots a partition's stats twice), so they
    are hand-unrolled over the field list instead of reflecting through
    ``dataclasses.fields`` — profiled at >10x cheaper, same results.
    """

    records_written: int = 0
    bytes_written_memory: int = 0
    bytes_flushed: int = 0
    bytes_merged_read: int = 0
    bytes_merged_written: int = 0
    records_merged: int = 0
    bytes_read: int = 0
    records_read: int = 0
    components_opened: int = 0
    flush_count: int = 0
    merge_count: int = 0
    bloom_negative_skips: int = 0

    def add(self, other: "StorageStats") -> None:
        """Accumulate another stats object into this one (in place)."""
        self.records_written += other.records_written
        self.bytes_written_memory += other.bytes_written_memory
        self.bytes_flushed += other.bytes_flushed
        self.bytes_merged_read += other.bytes_merged_read
        self.bytes_merged_written += other.bytes_merged_written
        self.records_merged += other.records_merged
        self.bytes_read += other.bytes_read
        self.records_read += other.records_read
        self.components_opened += other.components_opened
        self.flush_count += other.flush_count
        self.merge_count += other.merge_count
        self.bloom_negative_skips += other.bloom_negative_skips

    def snapshot(self) -> "StorageStats":
        """Return an independent copy of the current counters."""
        return StorageStats(
            self.records_written,
            self.bytes_written_memory,
            self.bytes_flushed,
            self.bytes_merged_read,
            self.bytes_merged_written,
            self.records_merged,
            self.bytes_read,
            self.records_read,
            self.components_opened,
            self.flush_count,
            self.merge_count,
            self.bloom_negative_skips,
        )

    def diff(self, earlier: "StorageStats") -> "StorageStats":
        """Return the work performed since ``earlier`` was snapshotted."""
        return StorageStats(
            self.records_written - earlier.records_written,
            self.bytes_written_memory - earlier.bytes_written_memory,
            self.bytes_flushed - earlier.bytes_flushed,
            self.bytes_merged_read - earlier.bytes_merged_read,
            self.bytes_merged_written - earlier.bytes_merged_written,
            self.records_merged - earlier.records_merged,
            self.bytes_read - earlier.bytes_read,
            self.records_read - earlier.records_read,
            self.components_opened - earlier.components_opened,
            self.flush_count - earlier.flush_count,
            self.merge_count - earlier.merge_count,
            self.bloom_negative_skips - earlier.bloom_negative_skips,
        )

    @property
    def total_disk_write_bytes(self) -> int:
        """All bytes written to (simulated) disk: flushes plus merge output."""
        return self.bytes_flushed + self.bytes_merged_written

    @property
    def total_disk_read_bytes(self) -> int:
        """All bytes read from (simulated) disk: queries plus merge input."""
        return self.bytes_read + self.bytes_merged_read

    def reset(self) -> None:
        """Zero every counter."""
        self.records_written = 0
        self.bytes_written_memory = 0
        self.bytes_flushed = 0
        self.bytes_merged_read = 0
        self.bytes_merged_written = 0
        self.records_merged = 0
        self.bytes_read = 0
        self.records_read = 0
        self.components_opened = 0
        self.flush_count = 0
        self.merge_count = 0
        self.bloom_negative_skips = 0
