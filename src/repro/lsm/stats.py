"""Storage-activity counters.

Every LSM-tree accumulates a :class:`StorageStats` describing the physical
work it performed (bytes flushed, merged, read, records parsed...).  The
cluster cost model (:mod:`repro.cluster.cost_model`) converts these counters
into simulated seconds; keeping the two concerns separate lets unit tests
assert on raw work and lets benchmarks swap cost parameters without touching
the storage engine.
"""

from __future__ import annotations

from dataclasses import dataclass, fields


@dataclass
class StorageStats:
    """Counters of physical storage work performed by one LSM-tree."""

    records_written: int = 0
    bytes_written_memory: int = 0
    bytes_flushed: int = 0
    bytes_merged_read: int = 0
    bytes_merged_written: int = 0
    records_merged: int = 0
    bytes_read: int = 0
    records_read: int = 0
    components_opened: int = 0
    flush_count: int = 0
    merge_count: int = 0
    bloom_negative_skips: int = 0

    def add(self, other: "StorageStats") -> None:
        """Accumulate another stats object into this one (in place)."""
        for field_info in fields(self):
            name = field_info.name
            setattr(self, name, getattr(self, name) + getattr(other, name))

    def snapshot(self) -> "StorageStats":
        """Return an independent copy of the current counters."""
        return StorageStats(**{f.name: getattr(self, f.name) for f in fields(self)})

    def diff(self, earlier: "StorageStats") -> "StorageStats":
        """Return the work performed since ``earlier`` was snapshotted."""
        return StorageStats(
            **{f.name: getattr(self, f.name) - getattr(earlier, f.name) for f in fields(self)}
        )

    @property
    def total_disk_write_bytes(self) -> int:
        """All bytes written to (simulated) disk: flushes plus merge output."""
        return self.bytes_flushed + self.bytes_merged_written

    @property
    def total_disk_read_bytes(self) -> int:
        """All bytes read from (simulated) disk: queries plus merge input."""
        return self.bytes_read + self.bytes_merged_read

    def reset(self) -> None:
        """Zero every counter."""
        for field_info in fields(self):
            setattr(self, field_info.name, 0)
