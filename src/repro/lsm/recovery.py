"""Single-partition recovery: WAL replay and manifest-based cleanup.

AsterixDB uses a no-steal buffer policy, so on a crash the disk components
named by the last forced manifest are intact and only the memory component's
writes need to be recovered from the data WAL.  Recovery here does exactly
that: it rebuilds an index from (a) the durable manifest (which disk
components / buckets are valid) and (b) a replay of the durable suffix of the
data log.

Cluster-level rebalance recovery (the six cases of Section V-D) lives in
:mod:`repro.rebalance.recovery`; it relies on these primitives.
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Optional

from .entry import Entry
from .tree import LSMTree
from .wal import DATA_RECORD_TYPES, LogRecord, LogRecordType, WriteAheadLog


def replay_data_records(
    records: Iterable[LogRecord],
    apply: Callable[[LogRecord], None],
) -> int:
    """Replay data log records in LSN order through ``apply``; return count."""
    count = 0
    ordered = sorted(
        (record for record in records if record.record_type in DATA_RECORD_TYPES),
        key=lambda record: record.lsn,
    )
    for record in ordered:
        apply(record)
        count += 1
    return count


def replay_into_tree(records: Iterable[LogRecord], tree: LSMTree) -> int:
    """Replay inserts/deletes/upserts from ``records`` into ``tree``."""

    def apply(record: LogRecord) -> None:
        key = record.payload.get("key")
        if record.record_type == LogRecordType.DELETE:
            tree.delete(key)
        else:
            tree.insert(key, record.payload.get("value"))

    return replay_data_records(records, apply)


class PartitionRecovery:
    """Recovers the indexes of one partition after a simulated crash.

    The partition object (see :class:`repro.cluster.partition.StoragePartition`)
    drives this: it crashes each index's manifest back to the durable state,
    discards unforced WAL tail records, and then replays the durable data
    records whose effects were only in memory components.

    The simulator's disk components live in memory, so "recovering" them means
    trusting the objects that the durable manifest still references and
    discarding anything created afterwards — which is exactly the cleanup
    behaviour Algorithm 1 relies on for partially-split buckets.
    """

    def __init__(self, wal: WriteAheadLog) -> None:
        self.wal = wal
        self.replayed_records = 0

    def recover_tree(
        self,
        tree: LSMTree,
        dataset: str,
        partition_id: Optional[int] = None,
        key_filter: Optional[Callable[[LogRecord], bool]] = None,
    ) -> int:
        """Replay this partition's durable log records into ``tree``.

        ``key_filter`` lets callers replay only the records that belong to one
        index (e.g. one bucket, or records newer than a snapshot LSN).
        """
        records: List[LogRecord] = [
            record
            for record in self.wal.records(durable_only=True)
            if record.dataset == dataset
            and (partition_id is None or record.partition_id == partition_id)
            and (key_filter is None or key_filter(record))
        ]
        replayed = replay_into_tree(records, tree)
        self.replayed_records += replayed
        return replayed

    @staticmethod
    def entries_from_records(records: Iterable[LogRecord]) -> List[Entry]:
        """Convert data log records into entries (used by log replication)."""
        entries: List[Entry] = []
        for record in sorted(records, key=lambda r: r.lsn):
            if record.record_type not in DATA_RECORD_TYPES:
                continue
            entries.append(
                Entry(
                    key=record.payload.get("key"),
                    value=record.payload.get("value"),
                    seqnum=record.lsn,
                    tombstone=record.record_type == LogRecordType.DELETE,
                )
            )
        return entries
