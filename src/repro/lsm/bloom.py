"""Bloom filters for LSM disk components.

AsterixDB builds a Bloom filter over the key set of every disk component so
point lookups can skip components that certainly do not contain the key
(Section II-B).  The simulator uses a real bit-array Bloom filter — not a
probability model — so lookup behaviour (including false positives) is
faithful and testable.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator

from ..common.hashutil import hash64, hash_key


class BloomFilter:
    """A standard Bloom filter over record keys.

    Parameters mirror :class:`repro.common.config.LSMConfig`:
    ``bits_per_key`` and ``num_hashes``.  A filter built with
    ``bits_per_key=0`` degenerates to "always maybe", which disables the
    optimization without special-casing callers.
    """

    __slots__ = ("_bits", "_num_bits", "_num_hashes", "_num_keys")

    def __init__(self, expected_keys: int, bits_per_key: int = 10, num_hashes: int = 7) -> None:
        if expected_keys < 0:
            raise ValueError("expected_keys must be non-negative")
        if bits_per_key < 0 or num_hashes < 0:
            raise ValueError("bloom parameters must be non-negative")
        self._num_bits = max(8, expected_keys * bits_per_key) if bits_per_key else 0
        self._num_hashes = num_hashes if bits_per_key else 0
        self._bits = bytearray((self._num_bits + 7) // 8) if self._num_bits else bytearray()
        self._num_keys = 0

    @classmethod
    def build(
        cls, keys: Iterable[Any], bits_per_key: int = 10, num_hashes: int = 7
    ) -> "BloomFilter":
        """Build a filter sized for ``keys`` and populate it."""
        key_list = list(keys)
        bloom = cls(len(key_list), bits_per_key=bits_per_key, num_hashes=num_hashes)
        for key in key_list:
            bloom.add(key)
        return bloom

    @property
    def num_keys(self) -> int:
        """Number of keys added so far."""
        return self._num_keys

    @property
    def size_bytes(self) -> int:
        """Size of the underlying bit array (0 when disabled)."""
        return len(self._bits)

    def _positions(self, key: Any) -> "Iterator[int]":
        base = hash_key(key)
        # Kirsch-Mitzenmacher double hashing: position_i = h1 + i * h2.
        h1 = base
        h2 = hash64(base ^ 0xA5A5A5A5A5A5A5A5) | 1
        for i in range(self._num_hashes):
            yield (h1 + i * h2) % self._num_bits

    def add(self, key: Any) -> None:
        """Insert ``key`` into the filter."""
        self._num_keys += 1
        if not self._num_bits:
            return
        for pos in self._positions(key):
            self._bits[pos >> 3] |= 1 << (pos & 7)

    def may_contain(self, key: Any) -> bool:
        """Return False only if ``key`` was definitely never added."""
        if not self._num_bits:
            return True
        for pos in self._positions(key):
            if not self._bits[pos >> 3] & (1 << (pos & 7)):
                return False
        return True

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"BloomFilter(keys={self._num_keys}, bits={self._num_bits})"
