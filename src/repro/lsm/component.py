"""LSM components: in-memory, immutable on-disk, and reference components.

Three component kinds are modelled, matching Sections II-B and IV of the
paper:

* :class:`MemoryComponent` — the mutable in-memory buffer of an LSM-tree.
* :class:`DiskComponent` — an immutable sorted run produced by a flush or a
  merge, with a Bloom filter over its keys.
* :class:`ReferenceDiskComponent` — the split mechanism of Algorithm 1: a
  component that stores no data of its own and instead points at a real disk
  component, filtering entries by the owning bucket's hash prefix.  This is
  how a bucket split avoids rewriting any data.

All components are *reference counted* (Section IV, "we use reference
counting for concurrency handling"): readers and writers retain a component
before using it and release it afterwards; a component is only reclaimed once
it has been deactivated (dropped from its index) **and** its reference count
reaches zero.
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, Iterable, Iterator, List, Optional, Tuple

from ..common.errors import ComponentStateError
from ..common.hashutil import hash_key, low_bits
from .bloom import BloomFilter
from .entry import Entry

_component_ids = itertools.count(1)


def next_component_id() -> int:
    """Return a process-wide unique component id (used for naming/debugging)."""
    return next(_component_ids)


class ReferenceCounted:
    """Mixin implementing the retain/release/deactivate lifecycle."""

    def __init__(self) -> None:
        self._refcount = 0
        self._active = True
        self._destroyed = False

    @property
    def refcount(self) -> int:
        return self._refcount

    @property
    def is_active(self) -> bool:
        """Active components are visible to new readers and writers."""
        return self._active

    @property
    def is_destroyed(self) -> bool:
        """Destroyed components have been reclaimed and must not be touched."""
        return self._destroyed

    def retain(self) -> None:
        """Pin the component so it cannot be reclaimed while in use."""
        if self._destroyed:
            raise ComponentStateError("cannot retain a destroyed component")
        self._refcount += 1

    def release(self) -> None:
        """Unpin the component; reclaims it if it was already deactivated."""
        if self._refcount <= 0:
            raise ComponentStateError("release without matching retain")
        self._refcount -= 1
        if self._refcount == 0 and not self._active:
            self._destroy()

    def deactivate(self) -> None:
        """Remove the component from visibility; reclaim when unreferenced."""
        self._active = False
        if self._refcount == 0:
            self._destroy()

    def _destroy(self) -> None:
        self._destroyed = True


class MemoryComponent(ReferenceCounted):
    """The mutable in-memory component of an LSM-tree.

    Entries are kept in a key -> entry dict (only the newest entry per key is
    retained, like a real memtable); the sorted order needed by a flush is
    produced on demand.
    """

    def __init__(self) -> None:
        super().__init__()
        self.component_id = next_component_id()
        self._entries: Dict[Any, Entry] = {}
        self._size_bytes = 0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def size_bytes(self) -> int:
        """Estimated bytes held by the component (grows monotonically)."""
        return self._size_bytes

    @property
    def is_empty(self) -> bool:
        return not self._entries

    def put(self, entry: Entry, size_bytes: Optional[int] = None) -> None:
        """Insert or overwrite an entry (inserts, updates and tombstones).

        ``size_bytes`` lets the write path pass the entry size it already
        computed for stats accounting.  The memtable replaces in place but
        the byte counter stays monotone (a real memtable arena does not
        shrink on overwrite).
        """
        if not self._active:
            raise ComponentStateError("cannot write to a deactivated memory component")
        self._entries[entry.key] = entry
        self._size_bytes += entry.size_bytes if size_bytes is None else size_bytes

    def get(self, key: Any) -> Optional[Entry]:
        """Return the newest entry for ``key`` or ``None`` if absent."""
        return self._entries.get(key)

    def sorted_entries(self) -> List[Entry]:
        """All entries ordered by key (what a flush writes out)."""
        return [self._entries[key] for key in sorted(self._entries.keys())]

    def scan(self, low: Any = None, high: Any = None) -> Iterator[Entry]:
        """Yield entries with ``low <= key <= high`` in key order."""
        for key in sorted(self._entries.keys()):
            if low is not None and key < low:
                continue
            if high is not None and key > high:
                break
            yield self._entries[key]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"MemoryComponent(id={self.component_id}, entries={len(self)})"


class DiskComponent(ReferenceCounted):
    """An immutable sorted run of entries, the unit of LSM disk storage."""

    def __init__(
        self,
        entries: Iterable[Entry],
        bloom_bits_per_key: int = 10,
        bloom_num_hashes: int = 7,
    ) -> None:
        super().__init__()
        self.component_id = next_component_id()
        entry_list = list(entries)
        entry_list.sort(key=lambda e: _sort_key(e.key))
        self._entries: List[Entry] = entry_list
        self._keys: List[Any] = [e.key for e in entry_list]
        self._size_bytes = sum(e.size_bytes for e in entry_list)
        self._bloom = BloomFilter.build(
            self._keys, bits_per_key=bloom_bits_per_key, num_hashes=bloom_num_hashes
        )
        self._index: Dict[Any, Entry] = {e.key: e for e in entry_list}

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def size_bytes(self) -> int:
        return self._size_bytes

    @property
    def bloom(self) -> BloomFilter:
        return self._bloom

    @property
    def min_key(self) -> Optional[Any]:
        return self._keys[0] if self._keys else None

    @property
    def max_key(self) -> Optional[Any]:
        return self._keys[-1] if self._keys else None

    def may_contain(self, key: Any) -> bool:
        """Bloom-filter check; False means the key is definitely absent."""
        return self._bloom.may_contain(key)

    def get(self, key: Any) -> Optional[Entry]:
        """Point lookup inside this component."""
        if self._destroyed:
            raise ComponentStateError("component already destroyed")
        return self._index.get(key)

    def scan(self, low: Any = None, high: Any = None) -> Iterator[Entry]:
        """Yield entries with ``low <= key <= high`` in key order."""
        if self._destroyed:
            raise ComponentStateError("component already destroyed")
        for entry in self._entries:
            if low is not None and _sort_key(entry.key) < _sort_key(low):
                continue
            if high is not None and _sort_key(entry.key) > _sort_key(high):
                break
            yield entry

    def entries(self) -> List[Entry]:
        """All entries in key order (used by merges and rebalance scans)."""
        if self._destroyed:
            raise ComponentStateError("component already destroyed")
        return list(self._entries)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"DiskComponent(id={self.component_id}, entries={len(self)}, bytes={self._size_bytes})"


class ReferenceDiskComponent(ReferenceCounted):
    """A disk component that only *points* at another component.

    Created by bucket splits (Algorithm 1): the two child buckets receive
    reference components pointing at the parent's disk components, filtered by
    the child bucket's hash prefix and depth.  All reads through a reference
    component apply that filter; the real rewrite of data is postponed to the
    next merge.
    """

    def __init__(self, target: DiskComponent, hash_prefix: int, depth: int) -> None:
        super().__init__()
        if depth < 0:
            raise ValueError("depth must be non-negative")
        self.component_id = next_component_id()
        self._target = target
        self.hash_prefix = low_bits(hash_prefix, depth)
        self.depth = depth
        # The reference pins its target so a concurrent merge/cleanup of the
        # parent bucket cannot reclaim it from under us.
        target.retain()
        self._released_target = False

    @property
    def target(self) -> DiskComponent:
        return self._target

    def _matches(self, key: Any) -> bool:
        return low_bits(hash_key(key), self.depth) == self.hash_prefix

    def __len__(self) -> int:
        return sum(1 for _ in self.entries())

    @property
    def size_bytes(self) -> int:
        """Estimated bytes *belonging to this bucket* inside the target.

        With a uniform hash, a reference at depth ``d`` over a parent written
        at depth ``d-1`` owns about half the parent's bytes.  We return the
        exact filtered size, which is what the rebalance planner needs.
        """
        return sum(e.size_bytes for e in self.entries())

    @property
    def referenced_bytes(self) -> int:
        """Bytes of the *target* component (what a scan must read through)."""
        return self._target.size_bytes

    def may_contain(self, key: Any) -> bool:
        if not self._matches(key):
            return False
        return self._target.may_contain(key)

    def get(self, key: Any) -> Optional[Entry]:
        """Point lookup with the bucket-prefix filtering step."""
        if self.is_destroyed:
            raise ComponentStateError("component already destroyed")
        if not self._matches(key):
            return None
        return self._target.get(key)

    def scan(self, low: Any = None, high: Any = None) -> Iterator[Entry]:
        """Scan the target, keeping only entries that belong to this bucket."""
        if self.is_destroyed:
            raise ComponentStateError("component already destroyed")
        for entry in self._target.scan(low, high):
            if self._matches(entry.key):
                yield entry

    def entries(self) -> List[Entry]:
        return list(self.scan())

    def materialize(self, bloom_bits_per_key: int = 10, bloom_num_hashes: int = 7) -> DiskComponent:
        """Produce a real disk component holding only this bucket's entries.

        Called by the next merge after a split, which is where the paper's
        design finally pays the write cost of separating the two buckets.
        """
        return DiskComponent(
            self.entries(),
            bloom_bits_per_key=bloom_bits_per_key,
            bloom_num_hashes=bloom_num_hashes,
        )

    def _destroy(self) -> None:
        super()._destroy()
        if not self._released_target:
            self._released_target = True
            self._target.release()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"ReferenceDiskComponent(id={self.component_id}, "
            f"prefix={self.hash_prefix:b}/{self.depth}, target={self._target.component_id})"
        )


def _sort_key(key: Any) -> Tuple:
    """Normalise keys for ordering so mixed int/tuple keys never compare raw.

    Within one index all keys have the same shape, but tests exercise edge
    cases; wrapping keys in a tuple keeps comparisons well-defined.
    """
    if isinstance(key, tuple):
        return key
    return (key,)
