"""LSM-tree storage substrate (Section II-B of the paper).

Public surface:

* :class:`LSMTree` — one LSM index (memory component + immutable disk
  components, flushes, size-tiered merges, Bloom-filtered point lookups,
  reconciling range scans).
* :class:`DiskComponent` / :class:`ReferenceDiskComponent` /
  :class:`MemoryComponent` — the component kinds, all reference counted.
* :class:`SizeTieredMergePolicy` and friends — merge policies.
* :class:`WriteAheadLog` — data and metadata logging with forced records.
* :class:`Manifest` — directory/metadata files with volatile vs durable state.
* :class:`PartitionRecovery` — WAL replay after a simulated crash.
"""

from .bloom import BloomFilter
from .component import (
    DiskComponent,
    MemoryComponent,
    ReferenceDiskComponent,
    next_component_id,
)
from .entry import Entry, estimate_key_size, estimate_value_size
from .iterators import count_live_entries, merge_entries, merge_scan
from .manifest import BucketManifestEntry, Manifest, ManifestState
from .merge_policy import (
    FullMergePolicy,
    MergeCandidate,
    MergePolicy,
    NoMergePolicy,
    SizeTieredMergePolicy,
    make_merge_policy,
)
from .recovery import PartitionRecovery, replay_data_records, replay_into_tree
from .stats import StorageStats
from .tree import LSMTree
from .wal import DATA_RECORD_TYPES, LogRecord, LogRecordType, WriteAheadLog

__all__ = [
    "BloomFilter",
    "BucketManifestEntry",
    "DATA_RECORD_TYPES",
    "DiskComponent",
    "Entry",
    "FullMergePolicy",
    "LSMTree",
    "LogRecord",
    "LogRecordType",
    "Manifest",
    "ManifestState",
    "MemoryComponent",
    "MergeCandidate",
    "MergePolicy",
    "NoMergePolicy",
    "PartitionRecovery",
    "ReferenceDiskComponent",
    "SizeTieredMergePolicy",
    "StorageStats",
    "WriteAheadLog",
    "count_live_entries",
    "estimate_key_size",
    "estimate_value_size",
    "make_merge_policy",
    "merge_entries",
    "merge_scan",
    "next_component_id",
    "replay_data_records",
    "replay_into_tree",
    "make_merge_policy",
]
