"""A single LSM-tree index.

This is the substrate on which everything else is built: the primary index of
a dataset partition is a *set* of these (one per bucket, see
:mod:`repro.bucketed`), while the primary-key index and each secondary index
is a single one (storage Option 1 of Section IV).

The tree supports the features the rebalance implementation needs:

* out-of-place writes with tombstone deletes and sequence numbers,
* explicit flushes (asynchronous vs synchronous only differ in how the caller
  accounts their latency; both produce an immutable disk component),
* size-tiered merges driven by a pluggable merge policy,
* point lookups with Bloom-filter skipping and range scans with
  priority-queue reconciliation,
* *loaded* components (bulk-created from scanned rebalance data) that can be
  appended to the back of the component list,
* *received component lists* that stay invisible to queries until the
  rebalance commits (Section V-B), and
* *lazy cleanup filters* that make queries ignore entries of moved buckets in
  secondary indexes until the next merge rewrites them (Section V-C).
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from ..common.config import LSMConfig
from ..common.errors import StorageError
from ..common.hashutil import hash_key, low_bits
from .component import DiskComponent, MemoryComponent, ReferenceDiskComponent
from .entry import Entry
from .iterators import merge_entries, merge_scan
from .manifest import Manifest
from .merge_policy import MergePolicy, SizeTieredMergePolicy, select_components
from .stats import StorageStats

_received_list_ids = itertools.count(1)

#: Union type of everything that can sit in a component list.
AnyDiskComponent = Any  # DiskComponent | ReferenceDiskComponent


class LSMTree:
    """One LSM index with a memory component and a newest-first disk list."""

    def __init__(
        self,
        name: str,
        config: Optional[LSMConfig] = None,
        merge_policy: Optional[MergePolicy] = None,
        routing_key_extractor: Optional[Callable[[Any], Any]] = None,
    ) -> None:
        self.name = name
        self.config = config or LSMConfig()
        self.merge_policy = merge_policy or SizeTieredMergePolicy(
            size_ratio=self.config.merge_size_ratio,
            min_components=self.config.merge_min_components,
            max_components=self.config.merge_max_components,
        )
        #: Maps an entry key to the key used for bucket-membership hashing.
        #: Identity for primary indexes; extracts the primary key for
        #: secondary indexes whose entry keys are (secondary key, primary key).
        self.routing_key_extractor = routing_key_extractor or (lambda key: key)
        self.memory = MemoryComponent()
        #: Disk components, newest first.
        self.disk_components: List[AnyDiskComponent] = []
        #: Received component lists from an in-flight rebalance, keyed by list
        #: id; invisible to queries until :meth:`install_received_list`.
        self._received_lists: Dict[int, List[AnyDiskComponent]] = {}
        #: Lazy-cleanup filters: entries whose routing key hashes into one of
        #: these (prefix, depth) buckets are ignored by reads.
        self._invalid_buckets: Set[Tuple[int, int]] = set()
        self.stats = StorageStats()
        self.manifest = Manifest(name)
        self._seqnum = 0
        self._merges_paused = False

    # ------------------------------------------------------------------ write

    def _next_seqnum(self) -> int:
        self._seqnum += 1
        return self._seqnum

    def insert(self, key: Any, value: Any) -> Entry:
        """Insert or overwrite a record."""
        return self._write(key, value, tombstone=False)

    # AsterixDB's feeds use upserts; they are identical to inserts here.
    upsert = insert

    def delete(self, key: Any) -> Entry:
        """Delete a record by writing a tombstone."""
        return self._write(key, None, tombstone=True)

    def apply_entry(self, entry: Entry) -> Entry:
        """Apply an existing entry (e.g. a replicated log record) verbatim,
        but stamped with a local sequence number so local ordering holds."""
        return self._write(entry.key, entry.value, tombstone=entry.tombstone)

    def _write(self, key: Any, value: Any, tombstone: bool) -> Entry:
        self._seqnum += 1
        entry = Entry(key, value, self._seqnum, tombstone)
        size = entry.size_bytes
        self.memory.put(entry, size)
        stats = self.stats
        stats.records_written += 1
        stats.bytes_written_memory += size
        return entry

    @property
    def memory_full(self) -> bool:
        """True once the memory component exceeds its configured budget."""
        return self.memory.size_bytes >= self.config.memory_component_bytes

    # ------------------------------------------------------------------ flush

    def flush(self) -> Optional[DiskComponent]:
        """Flush the memory component into a new (newest) disk component.

        Returns the new component, or ``None`` if the memory component was
        empty.  Both the asynchronous and synchronous flushes of Algorithm 1
        map to this call; the distinction between them is purely about what
        concurrent writers experience, which the caller (bucket split /
        rebalance initialization) accounts for.
        """
        if self.memory.is_empty:
            return None
        entries = self.memory.sorted_entries()
        component = DiskComponent(
            entries,
            bloom_bits_per_key=self.config.bloom_bits_per_key,
            bloom_num_hashes=self.config.bloom_num_hashes,
        )
        old_memory = self.memory
        self.memory = MemoryComponent()
        old_memory.deactivate()
        self.disk_components.insert(0, component)
        self.stats.flush_count += 1
        self.stats.bytes_flushed += component.size_bytes
        self._update_manifest()
        return component

    def maybe_flush(self) -> Optional[DiskComponent]:
        """Flush only if the memory component is over budget."""
        if self.memory_full:
            return self.flush()
        return None

    # ------------------------------------------------------------------ merge

    def pause_merges(self) -> None:
        """Stop scheduling new merges (step 1 of Algorithm 1)."""
        self._merges_paused = True

    def resume_merges(self) -> None:
        self._merges_paused = False

    @property
    def merges_paused(self) -> bool:
        return self._merges_paused

    def maybe_merge(self) -> Optional[DiskComponent]:
        """Run one merge if the policy asks for it; return the new component."""
        if self._merges_paused:
            return None
        sizes = [self._component_size(c) for c in self.disk_components]
        candidate = select_components(self.merge_policy, sizes)
        if candidate is None:
            return None
        return self._merge_range(candidate.start, candidate.end)

    def merge_all(self) -> Optional[DiskComponent]:
        """Merge every disk component into one (used by tests and cleanup)."""
        if len(self.disk_components) < 2:
            return None
        return self._merge_range(0, len(self.disk_components))

    def _merge_range(self, start: int, end: int) -> DiskComponent:
        victims = self.disk_components[start:end]
        includes_oldest = end == len(self.disk_components)
        entry_sources = [self._component_entries_for_merge(c) for c in victims]
        merged = merge_entries(entry_sources, drop_tombstones=includes_oldest)
        new_component = DiskComponent(
            merged,
            bloom_bits_per_key=self.config.bloom_bits_per_key,
            bloom_num_hashes=self.config.bloom_num_hashes,
        )
        read_bytes = sum(self._merge_read_bytes(c) for c in victims)
        self.stats.merge_count += 1
        self.stats.bytes_merged_read += read_bytes
        self.stats.bytes_merged_written += new_component.size_bytes
        self.stats.records_merged += sum(len(source) for source in entry_sources)
        self.disk_components[start:end] = [new_component]
        for victim in victims:
            victim.deactivate()
        # A merge that rewrote every component purges lazy-cleanup filters:
        # the invalidated entries were dropped while rewriting.
        if includes_oldest and start == 0:
            self._invalid_buckets.clear()
        self._update_manifest()
        return new_component

    def _component_entries_for_merge(self, component: AnyDiskComponent) -> List[Entry]:
        """Entries a merge reads from ``component``, applying cleanup filters."""
        entries = component.entries()
        if self._invalid_buckets:
            entries = [e for e in entries if not self._is_invalidated(e.key)]
        return entries

    def _merge_read_bytes(self, component: AnyDiskComponent) -> int:
        if isinstance(component, ReferenceDiskComponent):
            # A merge must read the whole referenced component to filter it.
            return component.referenced_bytes
        return component.size_bytes

    @staticmethod
    def _component_size(component: AnyDiskComponent) -> int:
        return component.size_bytes

    # ------------------------------------------------------------------ read

    def _visible_components(self) -> List[AnyDiskComponent]:
        return list(self.disk_components)

    def _is_invalidated(self, entry_key: Any) -> bool:
        if not self._invalid_buckets:
            return False
        routing_key = self.routing_key_extractor(entry_key)
        hashed = hash_key(routing_key)
        for prefix, depth in self._invalid_buckets:
            if low_bits(hashed, depth) == prefix:
                return True
        return False

    def get(self, key: Any) -> Optional[Any]:
        """Point lookup: newest-to-oldest search, Bloom-filter skipping.

        Returns the value, or ``None`` if the key is absent or deleted.
        """
        entry = self.get_entry(key)
        if entry is None or entry.tombstone:
            return None
        return entry.value

    def get_entry(self, key: Any) -> Optional[Entry]:
        """Like :meth:`get` but returns the raw entry (tombstones included)."""
        if self._is_invalidated(key):
            return None
        mem_entry = self.memory.get(key)
        if mem_entry is not None:
            self.stats.records_read += 1
            return mem_entry
        for component in self._visible_components():
            if not component.may_contain(key):
                self.stats.bloom_negative_skips += 1
                continue
            component.retain()
            try:
                self.stats.components_opened += 1
                entry = component.get(key)
            finally:
                component.release()
            if entry is not None:
                self.stats.records_read += 1
                self.stats.bytes_read += entry.size_bytes
                return entry
        return None

    def scan(
        self,
        low: Any = None,
        high: Any = None,
        include_tombstones: bool = False,
    ) -> Iterator[Entry]:
        """Range scan with priority-queue reconciliation across components."""
        components = self._visible_components()
        for component in components:
            component.retain()
        try:
            sources: List[Iterable[Entry]] = [self.memory.scan(low, high)]
            sources.extend(component.scan(low, high) for component in components)
            scanned_bytes = 0
            scanned_records = 0
            self.stats.components_opened += len(components)
            for entry in merge_scan(sources, include_tombstones=include_tombstones):
                # Physically-read bytes are counted before the lazy-cleanup
                # filter: obsolete entries of moved buckets still cost I/O
                # until a merge drops them (that is the "overhead" of lazy
                # secondary-index cleanup measured in Figure 8).
                scanned_records += 1
                scanned_bytes += entry.size_bytes
                if self._is_invalidated(entry.key):
                    continue
                yield entry
            self.stats.records_read += scanned_records
            self.stats.bytes_read += scanned_bytes
        finally:
            for component in components:
                component.release()

    def __contains__(self, key: Any) -> bool:
        return self.get(key) is not None

    def __len__(self) -> int:
        """Number of live keys (requires a full reconciling scan)."""
        return sum(1 for _ in self.scan())

    # --------------------------------------------------------- physical sizes

    @property
    def size_bytes(self) -> int:
        """Estimated total size of the index (memory plus visible disk)."""
        return self.memory.size_bytes + sum(
            self._component_size(c) for c in self.disk_components
        )

    @property
    def disk_size_bytes(self) -> int:
        return sum(self._component_size(c) for c in self.disk_components)

    @property
    def component_count(self) -> int:
        return len(self.disk_components)

    # ------------------------------------------------- rebalance integration

    def add_loaded_component(self, entries: Sequence[Entry], newest: bool = False) -> DiskComponent:
        """Create a disk component directly from pre-sorted data.

        Used by the rebalance destination to bulk-load scanned records.  With
        ``newest=False`` (the default) the component is appended at the *back*
        of the list, i.e. treated as strictly older than everything already
        present — exactly the ordering Section V-B requires between scanned
        data and replicated log records.
        """
        component = DiskComponent(
            entries,
            bloom_bits_per_key=self.config.bloom_bits_per_key,
            bloom_num_hashes=self.config.bloom_num_hashes,
        )
        if newest:
            self.disk_components.insert(0, component)
        else:
            self.disk_components.append(component)
        self.stats.bytes_flushed += component.size_bytes
        self._update_manifest()
        return component

    def create_received_list(self) -> int:
        """Open a new invisible component list for rebalance-received data."""
        list_id = next(_received_list_ids)
        self._received_lists[list_id] = []
        self.manifest.add_pending_received(list_id)
        return list_id

    def append_to_received_list(self, list_id: int, entries: Sequence[Entry]) -> DiskComponent:
        """Add a component of received records to an invisible list."""
        if list_id not in self._received_lists:
            raise StorageError(f"unknown received list {list_id}")
        component = DiskComponent(
            entries,
            bloom_bits_per_key=self.config.bloom_bits_per_key,
            bloom_num_hashes=self.config.bloom_num_hashes,
        )
        self._received_lists[list_id].append(component)
        self.stats.bytes_flushed += component.size_bytes
        return component

    def received_list_components(self, list_id: int) -> List[AnyDiskComponent]:
        if list_id not in self._received_lists:
            raise StorageError(f"unknown received list {list_id}")
        return list(self._received_lists[list_id])

    def received_list_ids(self) -> List[int]:
        return list(self._received_lists.keys())

    def install_received_list(self, list_id: int) -> None:
        """Make a received list visible (the NC-side commit task).

        The received components were written in arrival order (newest last is
        the bulk-loaded scan, newest first the replicated writes); they are
        registered *after* the existing newest components so that local writes
        that raced ahead keep their recency, and internal order is preserved.
        Installing an unknown list id is a no-op, making the operation
        idempotent (Section V-D, Case 4).
        """
        components = self._received_lists.pop(list_id, None)
        if components is None:
            return
        self.disk_components[0:0] = components
        self.manifest.remove_pending_received(list_id)
        self._update_manifest()

    def drop_received_list(self, list_id: int) -> None:
        """Delete a received list (the NC-side abort/cleanup task).

        Idempotent: dropping a list that does not exist is a no-op
        (Section V-D, Case 1).
        """
        components = self._received_lists.pop(list_id, None)
        if components is None:
            return
        for component in components:
            component.deactivate()
        self.manifest.remove_pending_received(list_id)

    def drop_all_received_lists(self) -> None:
        for list_id in list(self._received_lists.keys()):
            self.drop_received_list(list_id)

    def invalidate_bucket(self, hash_prefix: int, depth: int) -> None:
        """Lazy cleanup: hide all entries whose routing key falls in a bucket.

        Used by secondary indexes after a bucket moves away; the physical
        entries are dropped by the next full merge.
        """
        self._invalid_buckets.add((low_bits(hash_prefix, depth), depth))
        self.manifest.invalidate_bucket(low_bits(hash_prefix, depth), depth)

    @property
    def invalidated_buckets(self) -> Set[Tuple[int, int]]:
        return set(self._invalid_buckets)

    # ------------------------------------------------------------- manifest

    def _update_manifest(self) -> None:
        self.manifest.set_components([c.component_id for c in self.disk_components])

    def force_manifest(self) -> None:
        self._update_manifest()
        self.manifest.force()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"LSMTree(name={self.name!r}, mem={self.memory.size_bytes}B, "
            f"components={len(self.disk_components)})"
        )
