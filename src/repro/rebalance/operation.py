"""The rebalance operation: initialization, data movement, finalization.

This is the Section V protocol end-to-end for one dataset:

* **Initialization** — the CC forces a BEGIN metadata log record, pulls the
  latest local directories from the NCs (bucket splits are local), disables
  further splits, computes the new global directory with Algorithm 2 (or uses
  a caller-supplied plan), and flushes the memory components of every moving
  bucket to create the immutable snapshots that define the rebalance start
  time.
* **Data movement** — the affected buckets' snapshots are scanned at their
  sources, shipped, and bulk-loaded into invisible received buckets and
  secondary-index component lists at their destinations; concurrent writes are
  applied at the source and their log records replicated to the destination.
* **Finalization** — a two-phase commit: the CC blocks the dataset briefly,
  waits for every NC to finish log replication and flush its rebalance memory
  components (the *prepare* votes), forces a COMMIT record, tells the NCs to
  install received buckets and clean up moved buckets (both idempotent),
  updates the global directory, unblocks, and finally writes DONE.

Node/CC failures can be injected at the protocol sites named in
:class:`FaultInjector`; the recovery manager in
:mod:`repro.rebalance.recovery` then drives the six cases of Section V-D.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    Any,
    Dict,
    Generator,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    TYPE_CHECKING,
)

from ..common.errors import FaultInjected, RebalanceAborted, RebalanceError
from ..hashing.bucket_id import BucketId
from ..hashing.extendible import GlobalDirectory
from ..lsm.entry import estimate_value_size
from ..lsm.wal import LogRecordType
from ..cluster.reports import RebalanceReport
from ..sim import SimSegment
from .concurrency import LogReplicator
from .movement import DataMover
from .plan import RebalancePlan, compute_balanced_directory

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..cluster.controller import DatasetRuntime, SimulatedCluster


#: Protocol sites where a fault can be injected, in timeline order.
FAULT_SITES = (
    "nc_fail_before_prepare",       # Case 1
    "nc_fail_after_prepare",        # Case 2
    "cc_fail_before_commit",        # Case 3
    "nc_fail_before_committed",     # Case 4
    "cc_fail_after_commit",         # Case 5
    "cc_fail_after_done",           # Case 6
)


class FaultInjector:
    """Raises :class:`FaultInjected` the first time a registered site is hit."""

    def __init__(self, sites: Iterable[str] = ()) -> None:
        unknown = [site for site in sites if site not in FAULT_SITES]
        if unknown:
            raise ValueError(f"unknown fault sites: {unknown}")
        self._pending = set(sites)
        self.fired: List[str] = []

    def fire(self, site: str) -> None:
        if site in self._pending:
            self._pending.discard(site)
            self.fired.append(site)
            raise FaultInjected(site)

    def __bool__(self) -> bool:  # pragma: no cover - convenience
        return bool(self._pending)


def serialize_plan(plan: RebalancePlan) -> Dict[str, Any]:
    """Encode a plan into a metadata-log payload (used for recovery)."""
    return {
        "assignments": [
            [bucket.prefix, bucket.depth, partition]
            for bucket, partition in sorted(plan.new_directory.assignments.items())
        ],
        "moves": [
            [
                move.bucket.prefix,
                move.bucket.depth,
                -1 if move.source_partition is None else move.source_partition,
                move.destination_partition,
            ]
            for move in plan.moves
        ],
    }


def deserialize_assignments(payload: Mapping[str, Any]) -> GlobalDirectory:
    assignments = {
        BucketId(prefix, depth): partition
        for prefix, depth, partition in payload.get("assignments", [])
    }
    return GlobalDirectory(assignments)


def deserialize_moves(payload: Mapping[str, Any]) -> List[Dict[str, Any]]:
    moves = []
    for prefix, depth, source, destination in payload.get("moves", []):
        moves.append(
            {
                "bucket": BucketId(prefix, depth),
                "source": None if source < 0 else source,
                "destination": destination,
            }
        )
    return moves


@dataclass
class ConcurrentWriteLoad:
    """Concurrent writes applied while the rebalance's data movement runs."""

    rows: Sequence[Mapping[str, Any]] = ()
    #: Controlled write rate in records/second; 0 means "as provided".  Used
    #: only for reporting (Figure 7c plots rebalance time against this rate).
    write_rate_records_per_sec: float = 0.0


class RebalanceOperation:
    """One dataset's rebalance to a new set of partitions."""

    def __init__(
        self,
        cluster: "SimulatedCluster",
        dataset_name: str,
        target_partitions: Sequence[int],
        strategy_name: str = "DynaHash",
        plan: Optional[RebalancePlan] = None,
        fault_injector: Optional[FaultInjector] = None,
    ) -> None:
        self.cluster = cluster
        self.dataset_name = dataset_name
        self.runtime: "DatasetRuntime" = cluster.dataset(dataset_name)
        if self.runtime.routing_mode != "directory":
            raise RebalanceError(
                "RebalanceOperation requires directory routing; the global-hashing "
                "baseline reimplements its own movement in strategies.py"
            )
        self.target_partitions = list(target_partitions)
        self.strategy_name = strategy_name
        self.explicit_plan = plan
        self.faults = fault_injector or FaultInjector()
        self.rebalance_id = cluster.next_rebalance_id()
        self.plan: Optional[RebalancePlan] = plan
        self.old_nodes = cluster.num_nodes

    def _emit(self, name: str, **payload: Any) -> None:
        """Emit a lifecycle event on the cluster's bus (if it has one)."""
        events = getattr(self.cluster, "events", None)
        if events is not None:
            events.emit(
                name,
                dataset=self.dataset_name,
                rebalance_id=self.rebalance_id,
                **payload,
            )

    # ------------------------------------------------------------ utilities

    def _partition_nodes(self) -> Dict[int, str]:
        nodes: Dict[int, str] = {}
        for pid in set(self.target_partitions) | set(self.runtime.partitions.keys()):
            nodes[pid] = self.cluster.node_of_partition(pid).node_id
        return nodes

    def _nodes_of(self, partition_ids: Iterable[int]) -> List[str]:
        return sorted({self._partition_nodes()[pid] for pid in partition_ids})

    def _target_node_count(self) -> int:
        return len({self._partition_nodes()[pid] for pid in self.target_partitions})

    # -------------------------------------------------------------- phases

    def run(self, concurrent: Optional[ConcurrentWriteLoad] = None) -> RebalanceReport:
        """Execute the full rebalance; returns a committed or aborted report.

        Raises :class:`FaultInjected` when an injected fault models a crash
        that the running operation cannot resolve (the recovery manager must
        then be invoked, exactly like a restarted CC/NC would).
        """
        report = RebalanceReport(
            strategy=self.strategy_name,
            dataset=self.dataset_name,
            old_nodes=self.old_nodes,
            new_nodes=self._target_node_count(),
            committed=False,
            simulated_seconds=0.0,
        )
        self._emit("rebalance.dataset.start", strategy=self.strategy_name)
        try:
            init_seconds = self._initialization_phase(report)
            self._emit("rebalance.phase", phase="initialization", seconds=init_seconds)
            move_seconds = self._data_movement_phase(report, concurrent)
            self._emit("rebalance.phase", phase="data_movement", seconds=move_seconds)
            final_seconds = self._finalization_phase(report)
            self._emit("rebalance.phase", phase="finalization", seconds=final_seconds)
        except RebalanceAborted as aborted:
            abort_seconds = self._abort(str(aborted))
            report.abort_reason = str(aborted)
            report.phase_seconds["abort"] = abort_seconds
            report.simulated_seconds = sum(report.phase_seconds.values())
            self._emit("rebalance.abort", reason=str(aborted))
            self._emit("rebalance.dataset.complete", committed=False, report=report)
            return report
        report.committed = True
        report.phase_seconds.update(
            initialization=init_seconds, data_movement=move_seconds, finalization=final_seconds
        )
        report.simulated_seconds = init_seconds + move_seconds + final_seconds
        self._emit("rebalance.dataset.complete", committed=True, report=report)
        return report

    # -- initialization ------------------------------------------------------

    def _initialization_phase(self, report: RebalanceReport) -> float:
        cost = self.cluster.cost
        cc = self.cluster.cc
        # Force the BEGIN record before anything else (Section V-D relies on
        # it to learn about in-flight rebalances after a full-cluster crash).
        self._begin_record = cc.metadata_wal.append(
            LogRecordType.REBALANCE_BEGIN,
            self.dataset_name,
            None,
            {"rebalance_id": self.rebalance_id},
            force=True,
        )

        # Contact every NC for its latest local directory and disable splits.
        local_directories = {}
        for pid, partition in self.runtime.partitions.items():
            partition.primary.disable_splits()
            local_directories[pid] = partition.primary.directory
        refreshed = GlobalDirectory.from_local_directories(local_directories)
        self.runtime.global_directory = refreshed

        if self.explicit_plan is None:
            partition_nodes = self._partition_nodes()
            self.plan = compute_balanced_directory(
                refreshed, self.target_partitions, partition_nodes
            )
        else:
            self.plan = self.explicit_plan
        report.buckets_moved = self.plan.moved_buckets

        # Flush the memory components of every moving bucket: the flush time
        # is the rebalance start time and the resulting components are the
        # immutable snapshot (Section V-A).
        flush_bytes_by_node: Dict[str, float] = {}
        partition_nodes = self._partition_nodes()
        for move in self.plan.moves:
            if move.source_partition is None:
                continue
            source = self.runtime.partitions[move.source_partition]
            bucket = source.primary.bucket(move.bucket)
            component = bucket.flush()
            if component is not None:
                node = partition_nodes[move.source_partition]
                flush_bytes_by_node[node] = flush_bytes_by_node.get(node, 0) + component.size_bytes

        # Update the serialized plan into the BEGIN record's payload (the CC
        # writes it as part of the metadata transaction).
        self._begin_record.payload.update(serialize_plan(self.plan))
        cc.metadata_wal.force()

        per_node_seconds = {
            node: cost.disk_write_time(num_bytes) for node, num_bytes in flush_bytes_by_node.items()
        }
        chaos = getattr(self.cluster, "chaos", None)
        if chaos is not None:
            per_node_seconds = dict(chaos.scale_node_seconds(per_node_seconds))
        rpc_seconds = cost.rpc_time(2 * max(1, self.cluster.num_nodes))
        return cost.slowest(per_node_seconds) + rpc_seconds

    # -- data movement -------------------------------------------------------

    def _data_movement_phase(
        self, report: RebalanceReport, concurrent: Optional[ConcurrentWriteLoad]
    ) -> float:
        assert self.plan is not None
        cost = self.cluster.cost
        partition_nodes = self._partition_nodes()
        mover = DataMover(self.runtime, partition_nodes)
        replicator = LogReplicator(self.runtime, self.plan, partition_nodes)
        self._replicator = replicator

        moves = list(self.plan.moves)
        # Open the log-replication channel for every moving bucket before any
        # data moves: concurrent writes may target a bucket whose scan has not
        # started yet, and their replicated records must not be lost.
        for move in moves:
            self.runtime.partitions[move.destination_partition].receive_bucket(move.bucket, [])
        concurrent_rows = list(concurrent.rows) if concurrent is not None else []
        # Interleave concurrent writes with bucket moves so the replicated
        # records land while the movement is in flight, as they would online.
        writes_per_move = (
            max(1, len(concurrent_rows) // max(1, len(moves))) if concurrent_rows else 0
        )

        def concurrent_write(row: Mapping[str, Any]) -> None:
            self._concurrent_write(replicator, row)

        # Per-move tracing feed: probed once per phase, so untraced runs pay
        # one cached dict hit for the whole movement loop.
        bus = getattr(self.cluster, "events", None)
        trace_moves = bus is not None and bus.has_subscribers("rebalance.bucket_move")

        row_iter = iter(concurrent_rows)
        for move in moves:
            self.faults.fire("nc_fail_before_prepare")
            if trace_moves:
                loaded_before = mover.work.total_loaded_bytes
                moved_records = mover.move_bucket(move)
                self._emit(
                    "rebalance.bucket_move",
                    bucket=move.bucket.label,
                    source=move.source_partition,
                    destination=move.destination_partition,
                    records=moved_records,
                    payload_bytes=mover.work.total_loaded_bytes - loaded_before,
                )
            else:
                mover.move_bucket(move)
            for _ in range(writes_per_move):
                row = next(row_iter, None)
                if row is None:
                    break
                concurrent_write(row)
        for row in row_iter:
            concurrent_write(row)

        work = mover.work
        report.records_moved = work.records_moved
        report.bytes_scanned = work.total_scanned_bytes
        report.bytes_shipped = work.total_shipped_bytes
        report.bytes_loaded = work.total_loaded_bytes
        report.concurrent_writes_applied = replicator.stats.concurrent_writes
        report.replicated_log_records = replicator.stats.replicated_records

        # Per-node time: source scan + outbound network, destination load +
        # inbound network, all partitions of a node working in parallel but
        # sharing its network link; plus the cost of applying concurrent
        # writes (they contend with the movement on the same nodes).
        per_node: Dict[str, float] = {}

        def add(node: str, seconds: float) -> None:
            per_node[node] = per_node.get(node, 0.0) + seconds

        for pid, num_bytes in work.scanned_bytes_by_partition.items():
            add(partition_nodes[pid], cost.disk_read_time(num_bytes))
        for pid, num_bytes in work.loaded_bytes_by_partition.items():
            add(partition_nodes[pid], cost.disk_write_time(num_bytes))
        for node, num_bytes in work.shipped_bytes_by_node.items():
            add(node, cost.network_time(num_bytes))
        for node, num_bytes in work.received_bytes_by_node.items():
            add(node, cost.network_time(num_bytes))
        # CPU of repartitioning and of rebuilding secondary index entries.
        for pid, num_bytes in work.loaded_bytes_by_partition.items():
            add(partition_nodes[pid], cost.compare_time(work.records_moved))

        if replicator.stats.concurrent_writes:
            parse_seconds = cost.parse_time(replicator.stats.concurrent_writes)
            replication_network = cost.network_time(replicator.stats.replicated_bytes)
            for node in per_node:
                add(node, parse_seconds / max(1, len(per_node)))
            # Replication traffic shares the destination links.
            for node, num_bytes in work.received_bytes_by_node.items():
                add(node, replication_network / max(1, len(work.received_bytes_by_node)))

        chaos = getattr(self.cluster, "chaos", None)
        if chaos is not None:
            per_node = dict(chaos.scale_node_seconds(per_node))
        report.per_node_seconds = dict(per_node)
        return cost.slowest(per_node) + cost.rpc_time(self.cluster.num_nodes)

    def _concurrent_write(self, replicator: LogReplicator, row: Mapping[str, Any]) -> None:
        """Apply one concurrent write through the replication channel.

        Publishes the per-write latency a client would observe mid-rehash:
        the write is parsed and applied at its source, then its log record
        crosses the network twice (ship + replication ack) before the extra
        destination round trip acknowledges it — which is why writes are
        slower while a rebalance is in flight (Figure 7c).
        """
        cost = self.cluster.cost
        replicator.write(row)
        row_bytes = estimate_value_size(dict(row))
        self._emit(
            "op.update",
            latency_seconds=(
                cost.parse_time(1)
                + cost.network_time(2 * row_bytes)
                + cost.rpc_time(3)
            ),
            records=1,
            concurrent=True,
        )

    # -- interleaved execution (repro.sim) ------------------------------------

    def run_steps(
        self, concurrent: Optional[ConcurrentWriteLoad] = None
    ) -> Generator[SimSegment, None, RebalanceReport]:
        """Generator twin of :meth:`run` for the discrete-event engine.

        Each ``yield`` hands a :class:`~repro.sim.SimSegment` back to the
        consuming actor: the initialization cost, then one segment per bucket
        move (plus a trailing concurrent-write segment), then finalization.
        Protocol state mutates *between* yields, so a scheduler can interleave
        other actors — foreground reads, another dataset's movement — inside
        the data-movement window while the source partitions still serve the
        old directory.  The event sequence (names and payloads) matches
        :meth:`run` exactly; only clock positions differ.  The committed or
        aborted :class:`~repro.cluster.reports.RebalanceReport` is the
        generator's return value, with ``simulated_seconds`` equal to the sum
        of the yielded segments (so the metrics registry's overlap
        reconciliation at ``rebalance.complete`` is a no-op).
        """
        report = RebalanceReport(
            strategy=self.strategy_name,
            dataset=self.dataset_name,
            old_nodes=self.old_nodes,
            new_nodes=self._target_node_count(),
            committed=False,
            simulated_seconds=0.0,
        )
        self._emit("rebalance.dataset.start", strategy=self.strategy_name)
        try:
            init_seconds = self._initialization_phase(report)
            self._emit("rebalance.phase", phase="initialization", seconds=init_seconds)
            yield SimSegment("initialization", init_seconds)
            move_seconds = 0.0
            for segment in self._data_movement_segments(report, concurrent):
                move_seconds += segment.seconds
                yield segment
            self._emit("rebalance.phase", phase="data_movement", seconds=move_seconds)
            final_seconds = self._finalization_phase(report)
            self._emit("rebalance.phase", phase="finalization", seconds=final_seconds)
            yield SimSegment("finalization", final_seconds)
        except RebalanceAborted as aborted:
            abort_seconds = self._abort(str(aborted))
            report.abort_reason = str(aborted)
            report.phase_seconds["abort"] = abort_seconds
            report.simulated_seconds = sum(report.phase_seconds.values())
            self._emit("rebalance.abort", reason=str(aborted))
            self._emit("rebalance.dataset.complete", committed=False, report=report)
            return report
        report.committed = True
        report.phase_seconds.update(
            initialization=init_seconds, data_movement=move_seconds, finalization=final_seconds
        )
        report.simulated_seconds = init_seconds + move_seconds + final_seconds
        self._emit("rebalance.dataset.complete", committed=True, report=report)
        return report

    def _data_movement_segments(
        self, report: RebalanceReport, concurrent: Optional[ConcurrentWriteLoad]
    ) -> Generator[SimSegment, None, None]:
        """The data-movement phase sliced bucket-by-bucket.

        Performs the same state mutations as :meth:`_data_movement_phase`
        (same move order, same concurrent-write weaving, same events) but
        charges time per bucket: each ``"move"`` segment prices that bucket's
        scan + ship + load + index rebuild on the nodes it touched, and a
        trailing ``"concurrent_writes"`` segment prices the replication
        overhead that legacy accounting spreads over the whole phase.  Chaos
        window scaling applies per segment, so a straggler window that opens
        mid-movement only slows the buckets moved while it is active.
        """
        assert self.plan is not None
        cost = self.cluster.cost
        partition_nodes = self._partition_nodes()
        mover = DataMover(self.runtime, partition_nodes)
        replicator = LogReplicator(self.runtime, self.plan, partition_nodes)
        self._replicator = replicator
        work = mover.work
        chaos = getattr(self.cluster, "chaos", None)

        moves = list(self.plan.moves)
        # Open the log-replication channel for every moving bucket before any
        # data moves: concurrent writes may target a bucket whose scan has not
        # started yet, and their replicated records must not be lost.
        for move in moves:
            self.runtime.partitions[move.destination_partition].receive_bucket(move.bucket, [])
        concurrent_rows = list(concurrent.rows) if concurrent is not None else []
        writes_per_move = (
            max(1, len(concurrent_rows) // max(1, len(moves))) if concurrent_rows else 0
        )

        bus = getattr(self.cluster, "events", None)
        trace_moves = bus is not None and bus.has_subscribers("rebalance.bucket_move")

        per_node_totals: Dict[str, float] = {}

        def charged(per_node: Dict[str, float]) -> Dict[str, float]:
            """Chaos-scale one segment's node seconds and fold into the report totals."""
            if chaos is not None:
                per_node = dict(chaos.scale_node_seconds(per_node))
            for node, seconds in per_node.items():
                per_node_totals[node] = per_node_totals.get(node, 0.0) + seconds
            return per_node

        row_iter = iter(concurrent_rows)
        for index, move in enumerate(moves):
            self.faults.fire("nc_fail_before_prepare")
            source = move.source_partition
            destination = move.destination_partition
            source_node = partition_nodes[source] if source is not None else None
            destination_node = partition_nodes[destination]
            scanned_before = (
                work.scanned_bytes_by_partition.get(source, 0) if source is not None else 0
            )
            loaded_before = work.loaded_bytes_by_partition.get(destination, 0)
            shipped_before = (
                work.shipped_bytes_by_node.get(source_node, 0) if source_node is not None else 0
            )
            received_before = work.received_bytes_by_node.get(destination_node, 0)
            total_loaded_before = work.total_loaded_bytes
            moved_records = mover.move_bucket(move)
            if trace_moves:
                self._emit(
                    "rebalance.bucket_move",
                    bucket=move.bucket.label,
                    source=source,
                    destination=destination,
                    records=moved_records,
                    payload_bytes=work.total_loaded_bytes - total_loaded_before,
                )
            for _ in range(writes_per_move):
                row = next(row_iter, None)
                if row is None:
                    break
                self._concurrent_write(replicator, row)
            per_node: Dict[str, float] = {}
            if source is not None and source_node is not None:
                per_node[source_node] = cost.disk_read_time(
                    work.scanned_bytes_by_partition.get(source, 0) - scanned_before
                )
            per_node[destination_node] = per_node.get(destination_node, 0.0) + (
                cost.disk_write_time(
                    work.loaded_bytes_by_partition.get(destination, 0) - loaded_before
                )
                + cost.compare_time(moved_records)
            )
            if source_node is not None and source_node != destination_node:
                per_node[source_node] += cost.network_time(
                    work.shipped_bytes_by_node.get(source_node, 0) - shipped_before
                )
                per_node[destination_node] += cost.network_time(
                    work.received_bytes_by_node.get(destination_node, 0) - received_before
                )
            yield SimSegment(
                "move",
                cost.slowest(charged(per_node)) + cost.rpc_time(2),
                remaining=len(moves) - index - 1,
            )
        for row in row_iter:
            self._concurrent_write(replicator, row)

        report.records_moved = work.records_moved
        report.bytes_scanned = work.total_scanned_bytes
        report.bytes_shipped = work.total_shipped_bytes
        report.bytes_loaded = work.total_loaded_bytes
        report.concurrent_writes_applied = replicator.stats.concurrent_writes
        report.replicated_log_records = replicator.stats.replicated_records

        # Trailing segment: the CPU/network of applying the concurrent writes
        # (they contend with the movement on the same nodes) plus the phase's
        # closing round trip.
        trailing: Dict[str, float] = {}
        if replicator.stats.concurrent_writes:
            involved = sorted(
                {
                    partition_nodes[m.source_partition]
                    for m in moves
                    if m.source_partition is not None
                }
                | {partition_nodes[m.destination_partition] for m in moves}
            ) or sorted(set(partition_nodes.values()))
            parse_seconds = cost.parse_time(replicator.stats.concurrent_writes)
            for node in involved:
                trailing[node] = trailing.get(node, 0.0) + parse_seconds / max(1, len(involved))
            # Replication traffic shares the destination links.
            replication_network = cost.network_time(replicator.stats.replicated_bytes)
            received_nodes = sorted(work.received_bytes_by_node)
            for node in received_nodes:
                trailing[node] = trailing.get(node, 0.0) + replication_network / max(
                    1, len(received_nodes)
                )
        trailing_seconds = cost.slowest(charged(trailing)) + cost.rpc_time(self.cluster.num_nodes)
        report.per_node_seconds = dict(per_node_totals)
        yield SimSegment("concurrent_writes", trailing_seconds)

    # -- finalization ---------------------------------------------------------

    def _finalization_phase(self, report: RebalanceReport) -> float:
        assert self.plan is not None
        cost = self.cluster.cost
        cc = self.cluster.cc
        partition_nodes = self._partition_nodes()

        # Prepare phase: block the dataset, wait for log replication to drain
        # and for every NC to flush its rebalance memory components.
        self.runtime.blocked = True
        for partition in self.runtime.partitions.values():
            partition.block()
        prepare_flush_by_node: Dict[str, float] = {}
        try:
            self.faults.fire("cc_fail_before_commit")
            for pid, partition in self.runtime.partitions.items():
                self.faults.fire("nc_fail_after_prepare")
                flushed = partition.prepare_rebalance()
                node = partition_nodes[pid]
                prepare_flush_by_node[node] = prepare_flush_by_node.get(node, 0) + flushed
        except FaultInjected as fault:
            if fault.site == "nc_fail_after_prepare":
                # Case 2's *abort* variant is exercised by aborting here when
                # the recovering NC is told the operation did not commit; the
                # commit variant is reached via cc_fail_after_commit.
                raise
            raise

        prepare_seconds_by_node = {
            node: cost.disk_write_time(b) for node, b in prepare_flush_by_node.items()
        }
        chaos = getattr(self.cluster, "chaos", None)
        if chaos is not None:
            prepare_seconds_by_node = dict(chaos.scale_node_seconds(prepare_seconds_by_node))
        blocked_seconds = cost.slowest(prepare_seconds_by_node) + cost.rpc_time(
            2 * max(1, self.cluster.num_nodes)
        )

        # Commit point: force the COMMIT record.
        cc.metadata_wal.append(
            LogRecordType.REBALANCE_COMMIT,
            self.dataset_name,
            None,
            {"rebalance_id": self.rebalance_id},
            force=True,
        )
        self._emit("rebalance.commit", buckets_moved=report.buckets_moved)

        self.faults.fire("nc_fail_before_committed")
        self.faults.fire("cc_fail_after_commit")

        # Commit tasks at every NC (all idempotent).
        self.apply_commit_tasks()

        # The dataset is unblocked before the DONE record: DONE only means the
        # operation can be forgotten.
        report.blocked_seconds = blocked_seconds
        cc.metadata_wal.append(
            LogRecordType.REBALANCE_DONE,
            self.dataset_name,
            None,
            {"rebalance_id": self.rebalance_id},
            force=True,
        )
        self.faults.fire("cc_fail_after_done")
        return blocked_seconds + cost.rpc_time(2 * max(1, self.cluster.num_nodes))

    # -- commit/abort tasks (also used by recovery) ---------------------------

    def apply_commit_tasks(self) -> None:
        """Install received buckets, clean up moved buckets, swap the directory."""
        assert self.plan is not None
        apply_commit_to_runtime(self.runtime, self.plan.new_directory, self.plan.moves)

    def _abort(self, reason: str) -> float:
        cost = self.cluster.cost
        apply_abort_to_runtime(self.runtime)
        self.cluster.cc.metadata_wal.append(
            LogRecordType.REBALANCE_ABORT,
            self.dataset_name,
            None,
            {"rebalance_id": self.rebalance_id, "reason": reason},
            force=True,
        )
        self.cluster.cc.metadata_wal.append(
            LogRecordType.REBALANCE_DONE,
            self.dataset_name,
            None,
            {"rebalance_id": self.rebalance_id},
            force=True,
        )
        return cost.rpc_time(2 * max(1, self.cluster.num_nodes))


def apply_commit_to_runtime(
    runtime: "DatasetRuntime", new_directory: GlobalDirectory, moves: Sequence[Any]
) -> None:
    """The NC/CC commit tasks, shared between the live path and recovery.

    Every step is idempotent: installing with nothing pending, cleaning up an
    already-removed bucket, and re-assigning the directory are all no-ops the
    second time.
    """
    for partition in runtime.partitions.values():
        partition.install_received_buckets()
    for move in moves:
        source = getattr(move, "source_partition", None)
        bucket = getattr(move, "bucket", None)
        if bucket is None and isinstance(move, dict):
            bucket = move["bucket"]
            source = move["source"]
        if source is None:
            continue
        partition = runtime.partitions.get(source)
        if partition is not None:
            partition.cleanup_moved_bucket(bucket)
    runtime.global_directory = new_directory.copy()
    for partition in runtime.partitions.values():
        partition.unblock()
        partition.primary.enable_splits()
    runtime.blocked = False


def apply_abort_to_runtime(runtime: "DatasetRuntime") -> None:
    """The NC abort/cleanup tasks, shared between the live path and recovery."""
    for partition in runtime.partitions.values():
        partition.drop_received_buckets()
        partition.unblock()
        partition.primary.enable_splits()
    runtime.blocked = False
