"""Rebalance failure handling and recovery (Section V-D).

The outcome of a rebalance operation is decided solely by whether the CC
forced its COMMIT record: if it did, the rebalance is committed and every NC
must (re-)apply the commit tasks; otherwise it is aborted and every NC must
clean up its received data.  Both task sets are idempotent, so the recovery
manager can simply re-issue them regardless of how far the crashed run got —
which is exactly how the six cases of Section V-D collapse into two actions.

The manager reads only *durable* metadata log records (what survived the
crash) and finishes every rebalance that has a BEGIN but no DONE.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, TYPE_CHECKING

from ..lsm.wal import LogRecord, LogRecordType
from .operation import (
    apply_abort_to_runtime,
    apply_commit_to_runtime,
    deserialize_assignments,
    deserialize_moves,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..cluster.controller import SimulatedCluster


@dataclass
class PendingRebalance:
    """State of one rebalance reconstructed from the durable metadata log."""

    rebalance_id: int
    dataset: str
    begin: LogRecord
    commit: Optional[LogRecord] = None
    abort: Optional[LogRecord] = None
    done: Optional[LogRecord] = None

    @property
    def is_finished(self) -> bool:
        return self.done is not None

    @property
    def is_committed(self) -> bool:
        return self.commit is not None


@dataclass
class RecoveryOutcome:
    """What the recovery manager did for one pending rebalance."""

    rebalance_id: int
    dataset: str
    action: str  # "committed", "aborted", or "already-done"


class RebalanceRecoveryManager:
    """Drives CC/NC recovery for in-flight rebalance operations."""

    def __init__(self, cluster: "SimulatedCluster") -> None:
        self.cluster = cluster

    # ------------------------------------------------------------- analysis

    def pending_rebalances(self) -> List[PendingRebalance]:
        """Reconstruct rebalance states from the durable metadata log."""
        states: Dict[int, PendingRebalance] = {}
        for record in self.cluster.cc.metadata_wal.records(durable_only=True):
            rid = record.payload.get("rebalance_id")
            if rid is None:
                continue
            if record.record_type == LogRecordType.REBALANCE_BEGIN:
                states[rid] = PendingRebalance(
                    rebalance_id=rid, dataset=record.dataset, begin=record
                )
            elif rid in states:
                if record.record_type == LogRecordType.REBALANCE_COMMIT:
                    states[rid].commit = record
                elif record.record_type == LogRecordType.REBALANCE_ABORT:
                    states[rid].abort = record
                elif record.record_type == LogRecordType.REBALANCE_DONE:
                    states[rid].done = record
        return [state for state in states.values()]

    # -------------------------------------------------------------- recovery

    def recover(self) -> List[RecoveryOutcome]:
        """Finish every unfinished rebalance; returns what was done for each.

        * BEGIN + COMMIT, no DONE  → re-issue the commit tasks (Cases 4, 5).
        * BEGIN, no COMMIT, no DONE → abort and clean up (Cases 1, 2-abort, 3).
        * DONE present              → nothing to do (Case 6).
        """
        outcomes: List[RecoveryOutcome] = []
        for pending in self.pending_rebalances():
            if pending.is_finished:
                outcomes.append(
                    RecoveryOutcome(pending.rebalance_id, pending.dataset, "already-done")
                )
                continue
            runtime = self.cluster.dataset(pending.dataset)
            if pending.is_committed:
                new_directory = deserialize_assignments(pending.begin.payload)
                moves = deserialize_moves(pending.begin.payload)
                apply_commit_to_runtime(runtime, new_directory, moves)
                action = "committed"
            else:
                apply_abort_to_runtime(runtime)
                self.cluster.cc.metadata_wal.append(
                    LogRecordType.REBALANCE_ABORT,
                    pending.dataset,
                    None,
                    {"rebalance_id": pending.rebalance_id, "reason": "recovered after failure"},
                    force=True,
                )
                action = "aborted"
            self.cluster.cc.metadata_wal.append(
                LogRecordType.REBALANCE_DONE,
                pending.dataset,
                None,
                {"rebalance_id": pending.rebalance_id},
                force=True,
            )
            outcomes.append(RecoveryOutcome(pending.rebalance_id, pending.dataset, action))
        return outcomes

    def recover_node(self, node_id: str) -> List[RecoveryOutcome]:
        """An NC recovering always contacts the CC (Section V-D); because the
        NC-side tasks are idempotent and CC-driven here, node recovery simply
        triggers the same reconciliation as CC recovery."""
        node = self.cluster.node(node_id)
        node.recover()
        return self.recover()
