"""Rebalancing strategies: Hashing, StaticHash, DynaHash, ConsistentHash.

A strategy bundles the two decisions the paper's evaluation varies:

* how a dataset is laid out when it is created (routing mode, bucket count,
  whether buckets may split), and
* how the cluster rebalances when it is resized.

``DynaHash`` and ``StaticHash`` use the directory-based rebalance operation of
:mod:`repro.rebalance.operation`; ``Hashing`` reimplements AsterixDB's global
rebalancing baseline (recreate the dataset hash-partitioned over the new node
set, moving nearly every record); ``ConsistentHash`` is the Section II-A
taxonomy baseline, assigning a fixed bucket set to partitions through a hash
ring so that resizes move only the buckets whose ring owner changed.
"""

from __future__ import annotations

from dataclasses import replace
from typing import (
    Any,
    Callable,
    Dict,
    Generator,
    List,
    Mapping,
    Optional,
    Sequence,
    TYPE_CHECKING,
)

from ..common.config import BucketingConfig
from ..common.errors import ConfigError
from ..common.hashutil import hash64
from ..hashing.bucket_id import ROOT_BUCKET
from ..hashing.consistent import ConsistentHashRing
from ..hashing.extendible import GlobalDirectory
from ..hashing.static_bucket import static_buckets, static_directory
from ..cluster.partition import StoragePartition
from ..cluster.reports import ClusterRebalanceReport, RebalanceReport
from ..sim import SimSegment
from .operation import ConcurrentWriteLoad, FaultInjector, RebalanceOperation
from .plan import RebalancePlan, plan_from_directories

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..cluster.controller import SimulatedCluster


class RebalancingStrategy:
    """Base class: directory routing with the Section V rebalance operation."""

    name = "base"
    routing_mode = "directory"

    # -- dataset layout -------------------------------------------------------

    def bucketing_config(self, base: BucketingConfig, total_partitions: int) -> BucketingConfig:
        return base

    def initial_directory(
        self, total_partitions: int, bucketing: BucketingConfig
    ) -> GlobalDirectory:
        return GlobalDirectory.initial(total_partitions, bucketing.initial_buckets_per_partition)

    # -- rebalancing ----------------------------------------------------------

    def plan_for(
        self, cluster: "SimulatedCluster", dataset_name: str, target_partitions: Sequence[int]
    ) -> Optional[RebalancePlan]:
        """Strategies may precompute the new directory (ConsistentHash does);
        returning ``None`` lets the operation run Algorithm 2."""
        return None

    def rebalance_cluster(
        self,
        cluster: "SimulatedCluster",
        target_nodes: int,
        concurrent_rows: Optional[Mapping[str, Sequence[Mapping[str, Any]]]] = None,
        fault_injector: Optional[FaultInjector] = None,
    ) -> ClusterRebalanceReport:
        """Resize the cluster to ``target_nodes``, rebalancing every dataset."""
        old_nodes = cluster.num_nodes
        if target_nodes == old_nodes and not cluster.dataset_names():
            return ClusterRebalanceReport(self.name, old_nodes, target_nodes, 0.0)
        if target_nodes > old_nodes:
            cluster.provision_nodes(target_nodes)
        target_partitions = [
            pid
            for node in cluster.nodes[:target_nodes]
            for pid in node.partition_ids
        ]
        dataset_reports: List[RebalanceReport] = []
        all_committed = True
        for dataset_name in cluster.dataset_names():
            load = None
            if concurrent_rows and dataset_name in concurrent_rows:
                load = ConcurrentWriteLoad(rows=concurrent_rows[dataset_name])
            operation = RebalanceOperation(
                cluster,
                dataset_name,
                target_partitions,
                strategy_name=self.name,
                plan=self.plan_for(cluster, dataset_name, target_partitions),
                fault_injector=fault_injector or FaultInjector(),
            )
            report = operation.run(concurrent=load)
            dataset_reports.append(report)
            all_committed = all_committed and report.committed
        if target_nodes < old_nodes and all_committed:
            cluster.decommission_nodes(target_nodes)
        return ClusterRebalanceReport(
            strategy=self.name,
            old_nodes=old_nodes,
            new_nodes=cluster.num_nodes,
            simulated_seconds=sum(report.simulated_seconds for report in dataset_reports),
            dataset_reports=dataset_reports,
        )

    def rebalance_cluster_steps(
        self,
        cluster: "SimulatedCluster",
        target_nodes: int,
        concurrent_rows: Optional[Mapping[str, Sequence[Mapping[str, Any]]]] = None,
        fault_injector: Optional[FaultInjector] = None,
    ) -> "Generator[SimSegment, None, ClusterRebalanceReport]":
        """Generator twin of :meth:`rebalance_cluster` for the event scheduler.

        Delegates each dataset to
        :meth:`~repro.rebalance.operation.RebalanceOperation.run_steps`, so
        the consuming actor sees every bucket move as its own
        :class:`~repro.sim.SimSegment` and other actors can interleave inside
        the movement windows.  Provision/decommission bookkeeping and the
        returned report are identical to the run-to-completion path.
        """
        old_nodes = cluster.num_nodes
        if target_nodes == old_nodes and not cluster.dataset_names():
            return ClusterRebalanceReport(self.name, old_nodes, target_nodes, 0.0)
        if target_nodes > old_nodes:
            cluster.provision_nodes(target_nodes)
        target_partitions = [
            pid
            for node in cluster.nodes[:target_nodes]
            for pid in node.partition_ids
        ]
        dataset_reports: List[RebalanceReport] = []
        all_committed = True
        for dataset_name in cluster.dataset_names():
            load = None
            if concurrent_rows and dataset_name in concurrent_rows:
                load = ConcurrentWriteLoad(rows=concurrent_rows[dataset_name])
            operation = RebalanceOperation(
                cluster,
                dataset_name,
                target_partitions,
                strategy_name=self.name,
                plan=self.plan_for(cluster, dataset_name, target_partitions),
                fault_injector=fault_injector or FaultInjector(),
            )
            report = yield from operation.run_steps(concurrent=load)
            dataset_reports.append(report)
            all_committed = all_committed and report.committed
        if target_nodes < old_nodes and all_committed:
            cluster.decommission_nodes(target_nodes)
        return ClusterRebalanceReport(
            strategy=self.name,
            old_nodes=old_nodes,
            new_nodes=cluster.num_nodes,
            simulated_seconds=sum(report.simulated_seconds for report in dataset_reports),
            dataset_reports=dataset_reports,
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"{type(self).__name__}()"


class DynaHashStrategy(RebalancingStrategy):
    """The paper's contribution: dynamic bucketing with extendible hashing.

    Buckets split when they exceed ``max_bucket_bytes`` (10 GB in the paper);
    rebalancing moves whole buckets using Algorithm 2.
    """

    name = "DynaHash"

    def __init__(self, max_bucket_bytes: Optional[int] = None, initial_buckets_per_partition: int = 1) -> None:
        self.max_bucket_bytes = max_bucket_bytes
        self.initial_buckets_per_partition = initial_buckets_per_partition

    def bucketing_config(self, base: BucketingConfig, total_partitions: int) -> BucketingConfig:
        config = replace(
            base,
            static=False,
            initial_buckets_per_partition=self.initial_buckets_per_partition,
        )
        if self.max_bucket_bytes is not None:
            config = replace(config, max_bucket_bytes=self.max_bucket_bytes)
        return config

    def initial_directory(
        self, total_partitions: int, bucketing: BucketingConfig
    ) -> GlobalDirectory:
        return GlobalDirectory.initial(total_partitions, bucketing.initial_buckets_per_partition)


class StaticHashStrategy(RebalancingStrategy):
    """Static bucketing: a fixed number of buckets (256 in the paper), no splits."""

    name = "StaticHash"

    def __init__(self, total_buckets: int = 256) -> None:
        if total_buckets < 1:
            raise ConfigError("total_buckets must be at least 1")
        self.total_buckets = total_buckets

    def bucketing_config(self, base: BucketingConfig, total_partitions: int) -> BucketingConfig:
        return replace(base, static=True, static_total_buckets=self.total_buckets)

    def initial_directory(
        self, total_partitions: int, bucketing: BucketingConfig
    ) -> GlobalDirectory:
        return static_directory(self.total_buckets, total_partitions)


class ConsistentHashStrategy(RebalancingStrategy):
    """Consistent hashing over a fixed bucket set (buckets act as tokens).

    Buckets are assigned to partitions by hashing each bucket onto a ring of
    partition tokens; a resize rebuilds the ring over the target partitions
    and moves only the buckets whose owner changed.  This is the Section II-A
    consistent-hashing baseline expressed in DynaHash's bucket machinery so
    the same movement/commit code is exercised.
    """

    name = "ConsistentHash"

    def __init__(self, total_buckets: int = 256, virtual_nodes: int = 16) -> None:
        self.total_buckets = total_buckets
        self.virtual_nodes = virtual_nodes

    def bucketing_config(self, base: BucketingConfig, total_partitions: int) -> BucketingConfig:
        return replace(base, static=True, static_total_buckets=self.total_buckets)

    def _ring(self, partitions: Sequence[int]) -> ConsistentHashRing:
        ring = ConsistentHashRing(virtual_nodes=self.virtual_nodes)
        for pid in partitions:
            ring.add_node(pid)
        return ring

    def _assign(self, partitions: Sequence[int]) -> GlobalDirectory:
        ring = self._ring(partitions)
        assignments = {
            bucket: ring.node_for_hash(hash64(bucket.prefix + 0x9E37))
            for bucket in static_buckets(self.total_buckets)
        }
        return GlobalDirectory(assignments)

    def initial_directory(
        self, total_partitions: int, bucketing: BucketingConfig
    ) -> GlobalDirectory:
        return self._assign(list(range(total_partitions)))

    def plan_for(
        self, cluster: "SimulatedCluster", dataset_name: str, target_partitions: Sequence[int]
    ) -> Optional[RebalancePlan]:
        runtime = cluster.dataset(dataset_name)
        new_directory = self._assign(list(target_partitions))
        return plan_from_directories(runtime.global_directory, new_directory)


class GlobalHashingStrategy(RebalancingStrategy):
    """AsterixDB's existing global rebalancing with hash partitioning.

    Records are assigned to partition ``hash(K) mod P``; when the cluster is
    resized the dataset is recreated, hash-partitioned over the new node set,
    which moves nearly every record (Section II-C).  Reads stay available off
    the old copy while the new one is built, and the dataset's disk usage
    roughly doubles during the rebalance — both properties of the real
    baseline.
    """

    name = "Hashing"
    routing_mode = "modulo"

    def bucketing_config(self, base: BucketingConfig, total_partitions: int) -> BucketingConfig:
        # The baseline stores each partition as one traditional LSM-tree,
        # which is a single never-splitting root bucket in our storage layer.
        return replace(base, static=True, initial_buckets_per_partition=1)

    def rebalance_cluster(
        self,
        cluster: "SimulatedCluster",
        target_nodes: int,
        concurrent_rows: Optional[Mapping[str, Sequence[Mapping[str, Any]]]] = None,
        fault_injector: Optional[FaultInjector] = None,
    ) -> ClusterRebalanceReport:
        if fault_injector is not None and fault_injector:
            raise ConfigError(
                "the Hashing baseline rebuilds datasets offline and has no "
                "Section V protocol sites; fault injection requires a "
                "directory-routing strategy (dynahash/statichash/consistenthash)"
            )
        old_nodes = cluster.num_nodes
        if target_nodes > old_nodes:
            cluster.provision_nodes(target_nodes)
        target_node_objects = cluster.nodes[:target_nodes]
        target_partitions = [pid for node in target_node_objects for pid in node.partition_ids]
        dataset_reports: List[RebalanceReport] = []
        for dataset_name in cluster.dataset_names():
            rows = list(concurrent_rows.get(dataset_name, [])) if concurrent_rows else []
            dataset_reports.append(
                self._rebalance_dataset(cluster, dataset_name, target_partitions, rows)
            )
        cluster.decommission_nodes(target_nodes) if target_nodes < old_nodes else None
        return ClusterRebalanceReport(
            strategy=self.name,
            old_nodes=old_nodes,
            new_nodes=cluster.num_nodes,
            simulated_seconds=sum(report.simulated_seconds for report in dataset_reports),
            dataset_reports=dataset_reports,
        )

    def rebalance_cluster_steps(
        self,
        cluster: "SimulatedCluster",
        target_nodes: int,
        concurrent_rows: Optional[Mapping[str, Sequence[Mapping[str, Any]]]] = None,
        fault_injector: Optional[FaultInjector] = None,
    ) -> "Generator[SimSegment, None, ClusterRebalanceReport]":
        """Coarse fallback: the offline rebuild has no interleaving points.

        The baseline recreates every dataset in one shot (there is no
        bucket-by-bucket protocol to slice), so the interleaved engine gets a
        single ``offline_rebuild`` segment spanning the whole rebuild.
        """
        report = self.rebalance_cluster(
            cluster,
            target_nodes,
            concurrent_rows=concurrent_rows,
            fault_injector=fault_injector,
        )
        yield SimSegment("offline_rebuild", report.simulated_seconds)
        return report

    def _rebalance_dataset(
        self,
        cluster: "SimulatedCluster",
        dataset_name: str,
        target_partitions: Sequence[int],
        concurrent_rows: Sequence[Mapping[str, Any]],
    ) -> RebalanceReport:
        cost = cluster.cost
        runtime = cluster.dataset(dataset_name)
        old_partitions = dict(runtime.partitions)
        num_new = len(target_partitions)
        report = RebalanceReport(
            strategy=self.name,
            dataset=dataset_name,
            old_nodes=cluster.num_nodes if not old_partitions else len(
                {cluster.node_of_partition(pid).node_id for pid in old_partitions}
            ),
            new_nodes=len({cluster.node_of_partition(pid).node_id for pid in target_partitions}),
            committed=False,
            simulated_seconds=0.0,
        )
        # Build the new (hash-partitioned) copy of the dataset.
        new_partitions: Dict[int, StoragePartition] = {}
        for pid in target_partitions:
            node = cluster.node_of_partition(pid)
            new_partitions[pid] = StoragePartition(
                dataset=runtime.spec,
                partition_id=pid,
                node_id=node.node_id,
                initial_buckets=[ROOT_BUCKET],
                lsm_config=cluster.config.lsm,
                bucketing_config=runtime.bucketing,
                wal=node.wal,
            )

        scanned_by_partition: Dict[int, int] = {}
        shipped_by_node: Dict[str, float] = {}
        received_by_node: Dict[str, float] = {}
        loaded_records_by_partition: Dict[int, int] = {}
        records_moved = 0
        cross_node_records = 0

        for old_pid, partition in old_partitions.items():
            old_node = cluster.node_of_partition(old_pid).node_id
            scanned_by_partition[old_pid] = partition.primary_size_bytes
            for entry in partition.scan_primary():
                record = entry.value
                key = entry.key
                new_pid = target_partitions[hash_key_of(key) % num_new]
                new_partitions[new_pid].insert(record, log=False)
                new_node = cluster.node_of_partition(new_pid).node_id
                loaded_records_by_partition[new_pid] = (
                    loaded_records_by_partition.get(new_pid, 0) + 1
                )
                records_moved += 1
                if new_node != old_node:
                    cross_node_records += 1
                    shipped_by_node[old_node] = shipped_by_node.get(old_node, 0) + entry.size_bytes
                    received_by_node[new_node] = received_by_node.get(new_node, 0) + entry.size_bytes

        # Concurrent writes land on the new copy as well (the baseline blocks
        # nothing in our model; it simply redoes them).
        for row in concurrent_rows:
            key = runtime.spec.primary_key_of(row)
            new_pid = target_partitions[hash_key_of(key) % num_new]
            new_partitions[new_pid].insert(row, log=False)
            loaded_records_by_partition[new_pid] = loaded_records_by_partition.get(new_pid, 0) + 1
            records_moved += 1
        for partition in new_partitions.values():
            partition.maintain(force_flush=True)
        # The destination work of global rebalancing goes through the regular
        # record-at-a-time insertion path (parsing, index maintenance, flushes
        # and merges) — that, plus rewriting nearly every record, is why the
        # paper's Hashing baseline is so expensive.
        destination_work = {
            pid: new_partitions[pid].stats_snapshot() for pid in new_partitions
        }

        # Swap the dataset over to the new copy and detach the old partitions.
        for old_pid, partition in old_partitions.items():
            node = cluster.node_of_partition(old_pid)
            node.drop_partition(dataset_name, old_pid)
        runtime.partitions.clear()
        for pid, partition in new_partitions.items():
            runtime.partitions[pid] = partition
            cluster.node_of_partition(pid).add_partition(partition)
        runtime.global_directory = None
        runtime.routing_mode = "modulo"

        # ---- cost roll-up (slowest node over scan, load, and network) ----
        per_node: Dict[str, float] = {}

        def add(node_id: str, seconds: float) -> None:
            per_node[node_id] = per_node.get(node_id, 0.0) + seconds

        for pid, num_bytes in scanned_by_partition.items():
            add(cluster.node_of_partition(pid).node_id, cost.disk_read_time(num_bytes))
        loaded_bytes_total = 0
        for pid, stats in destination_work.items():
            breakdown = cost.ingest_work(loaded_records_by_partition.get(pid, 0), stats)
            add(cluster.node_of_partition(pid).node_id, breakdown.total_sec)
            loaded_bytes_total += stats.total_disk_write_bytes
        for node_id, num_bytes in shipped_by_node.items():
            add(node_id, cost.network_time(num_bytes))
        for node_id, num_bytes in received_by_node.items():
            add(node_id, cost.network_time(num_bytes))
        # Repartitioning every record costs CPU on its source node.
        for pid in scanned_by_partition:
            add(
                cluster.node_of_partition(pid).node_id,
                cost.compare_time(records_moved / max(1, len(scanned_by_partition))),
            )

        report.committed = True
        report.records_moved = records_moved
        report.buckets_moved = len(old_partitions)
        report.bytes_scanned = sum(scanned_by_partition.values())
        report.bytes_shipped = int(sum(shipped_by_node.values()))
        report.bytes_loaded = loaded_bytes_total
        report.concurrent_writes_applied = len(concurrent_rows)
        chaos = getattr(cluster, "chaos", None)
        if chaos is not None:
            per_node = dict(chaos.scale_node_seconds(per_node))
        report.per_node_seconds = per_node
        report.simulated_seconds = cost.slowest(per_node) + cost.rpc_time(
            2 * max(1, cluster.num_nodes)
        )
        report.phase_seconds = {"data_movement": report.simulated_seconds}
        return report


def hash_key_of(key: Any) -> int:
    """Hash a primary key for modulo partitioning (shared with the feed path)."""
    from ..common.hashutil import hash_key

    return hash_key(key)


#: canonical name -> strategy factory.
_STRATEGY_FACTORIES: Dict[str, Any] = {}
#: alias (lowercase) -> canonical name.
_STRATEGY_ALIASES: Dict[str, str] = {}


def register_strategy(name: str, factory: "Callable[..., Any]", aliases: Sequence[str] = ()) -> None:
    """Register a rebalancing strategy under ``name`` (plus ``aliases``).

    ``factory`` is any callable returning a strategy object (usually the
    strategy class itself); extra keyword arguments given to
    :func:`strategy_by_name` are forwarded to it.  Registration is
    case-insensitive and re-registering a name replaces the previous entry,
    which lets tests and downstream code swap in instrumented strategies.
    """
    if not name:
        raise ConfigError("strategy name must not be empty")
    canonical = name.lower()
    _STRATEGY_FACTORIES[canonical] = factory
    _STRATEGY_ALIASES[canonical] = canonical
    for alias in aliases:
        _STRATEGY_ALIASES[alias.lower()] = canonical


def available_strategies() -> List[str]:
    """Canonical names accepted by :func:`strategy_by_name`, sorted."""
    return sorted(_STRATEGY_FACTORIES)


def strategy_by_name(name: str, **kwargs: Any) -> RebalancingStrategy:
    """Resolve a registered strategy name (or alias) to a fresh instance.

    Keyword arguments are forwarded to the strategy factory, e.g.
    ``strategy_by_name("dynahash", max_bucket_bytes=64 * 1024)``.
    """
    normalized = str(name).strip().lower()
    canonical = _STRATEGY_ALIASES.get(normalized)
    if canonical is None:
        raise ConfigError(
            f"unknown rebalancing strategy {name!r}; "
            f"valid choices: {', '.join(available_strategies())} "
            f"(aliases: {', '.join(sorted(set(_STRATEGY_ALIASES) - set(_STRATEGY_FACTORIES)))})"
        )
    return _STRATEGY_FACTORIES[canonical](**kwargs)


register_strategy("dynahash", DynaHashStrategy, aliases=("dyna",))
register_strategy("statichash", StaticHashStrategy, aliases=("static",))
register_strategy(
    "hashing", GlobalHashingStrategy, aliases=("global", "globalhashing", "modulo")
)
register_strategy(
    "consistenthash", ConsistentHashStrategy, aliases=("consistent", "consistenthashing")
)
