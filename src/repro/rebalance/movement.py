"""The data movement phase (Section V-B).

For every bucket that changes partitions, the source partition scans the
bucket's immutable snapshot (its disk components after the initialization
flush), the records are shipped to the destination, and the destination
bulk-loads them into a *pending received* bucket plus new invisible component
lists for each secondary index.  Secondary index entries are rebuilt at the
destination from the shipped records — the source never reads its secondary
indexes.

The module also accounts the physical work so the operation can convert it
into per-node simulated time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, TYPE_CHECKING

from ..cluster.partition import StoragePartition
from ..lsm.entry import Entry
from .plan import BucketMove

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..cluster.controller import DatasetRuntime


@dataclass
class MovementWork:
    """Physical work of moving buckets, broken down by partition and node."""

    #: Bytes read from each source partition's disk.
    scanned_bytes_by_partition: Dict[int, int] = field(default_factory=dict)
    #: Bytes sent out of each source node / into each destination node.
    shipped_bytes_by_node: Dict[str, int] = field(default_factory=dict)
    received_bytes_by_node: Dict[str, int] = field(default_factory=dict)
    #: Bytes written at each destination partition (primary plus secondary).
    loaded_bytes_by_partition: Dict[int, int] = field(default_factory=dict)
    records_moved: int = 0
    buckets_moved: int = 0

    @property
    def total_scanned_bytes(self) -> int:
        return sum(self.scanned_bytes_by_partition.values())

    @property
    def total_shipped_bytes(self) -> int:
        return sum(self.shipped_bytes_by_node.values())

    @property
    def total_loaded_bytes(self) -> int:
        return sum(self.loaded_bytes_by_partition.values())

    def add_scan(self, partition_id: int, num_bytes: int) -> None:
        self.scanned_bytes_by_partition[partition_id] = (
            self.scanned_bytes_by_partition.get(partition_id, 0) + num_bytes
        )

    def add_shipment(self, source_node: str, destination_node: str, num_bytes: int) -> None:
        if source_node != destination_node:
            self.shipped_bytes_by_node[source_node] = (
                self.shipped_bytes_by_node.get(source_node, 0) + num_bytes
            )
            self.received_bytes_by_node[destination_node] = (
                self.received_bytes_by_node.get(destination_node, 0) + num_bytes
            )

    def add_load(self, partition_id: int, num_bytes: int) -> None:
        self.loaded_bytes_by_partition[partition_id] = (
            self.loaded_bytes_by_partition.get(partition_id, 0) + num_bytes
        )


class DataMover:
    """Executes the data movement phase for one dataset."""

    def __init__(self, runtime: "DatasetRuntime", partition_nodes: Mapping[int, str]) -> None:
        self.runtime = runtime
        self.partition_nodes = dict(partition_nodes)
        self.work = MovementWork()
        #: Snapshots taken per move, released after the move completes.
        self._snapshots: List[List] = []

    def partition(self, partition_id: int) -> StoragePartition:
        return self.runtime.partitions[partition_id]

    def move_bucket(self, move: BucketMove) -> int:
        """Move one bucket's snapshot; returns the number of records moved."""
        destination = self.partition(move.destination_partition)
        if move.source_partition is None:
            # A bucket with no current home (can only happen if a partition
            # disappeared without a clean decommission); nothing to scan.
            destination.receive_bucket(move.bucket, [])
            self.work.buckets_moved += 1
            return 0
        source = self.partition(move.source_partition)
        snapshot = source.snapshot_bucket(move.bucket)
        self._snapshots.append(snapshot)
        entries: List[Entry] = source.scan_bucket_snapshot(snapshot)
        payload_bytes = sum(entry.size_bytes for entry in entries)
        scanned_bytes = sum(
            getattr(component, "referenced_bytes", component.size_bytes)
            for component in snapshot
        )
        destination.receive_bucket(move.bucket, entries)

        source_node = self.partition_nodes[move.source_partition]
        destination_node = self.partition_nodes[move.destination_partition]
        self.work.add_scan(move.source_partition, scanned_bytes)
        self.work.add_shipment(source_node, destination_node, payload_bytes)
        # The destination writes the primary bucket plus rebuilt secondary
        # entries; approximate the secondary write volume from what the
        # destination actually buffered (its received lists).
        self.work.add_load(move.destination_partition, payload_bytes)
        self.work.records_moved += len(entries)
        self.work.buckets_moved += 1

        source.release_bucket_snapshot(snapshot)
        self._snapshots.remove(snapshot)
        return len(entries)

    def move_all(self, moves: List[BucketMove]) -> MovementWork:
        """Move every bucket in the plan (the paper moves them together)."""
        for move in moves:
            self.move_bucket(move)
        return self.work
