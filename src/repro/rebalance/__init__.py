"""The rebalance operation (Section V) and the evaluated rebalancing strategies.

* :func:`compute_balanced_directory` — Algorithm 2 (the greedy BALANCE step).
* :class:`RebalanceOperation` — the three-phase online rebalance with its
  two-phase commit and fault-injection sites.
* :class:`RebalanceRecoveryManager` — the Section V-D failure cases.
* Strategies: :class:`GlobalHashingStrategy` (the paper's ``Hashing``
  baseline), :class:`StaticHashStrategy`, :class:`DynaHashStrategy`, and the
  :class:`ConsistentHashStrategy` taxonomy baseline.
"""

from .concurrency import LogReplicator, ReplicationStats
from .movement import DataMover, MovementWork
from .operation import (
    FAULT_SITES,
    ConcurrentWriteLoad,
    FaultInjector,
    RebalanceOperation,
    apply_abort_to_runtime,
    apply_commit_to_runtime,
)
from .plan import (
    BucketMove,
    RebalancePlan,
    compute_balanced_directory,
    compute_round_robin_directory,
    plan_from_directories,
)
from .recovery import PendingRebalance, RebalanceRecoveryManager, RecoveryOutcome
from .strategies import (
    ConsistentHashStrategy,
    DynaHashStrategy,
    GlobalHashingStrategy,
    RebalancingStrategy,
    StaticHashStrategy,
    available_strategies,
    register_strategy,
    strategy_by_name,
)

__all__ = [
    "BucketMove",
    "ConcurrentWriteLoad",
    "ConsistentHashStrategy",
    "DataMover",
    "DynaHashStrategy",
    "FAULT_SITES",
    "FaultInjector",
    "GlobalHashingStrategy",
    "LogReplicator",
    "MovementWork",
    "PendingRebalance",
    "RebalanceOperation",
    "RebalancePlan",
    "RebalanceRecoveryManager",
    "RebalancingStrategy",
    "RecoveryOutcome",
    "ReplicationStats",
    "StaticHashStrategy",
    "apply_abort_to_runtime",
    "apply_commit_to_runtime",
    "available_strategies",
    "compute_balanced_directory",
    "compute_round_robin_directory",
    "plan_from_directories",
    "register_strategy",
    "strategy_by_name",
]
