"""Computing the new global directory — Algorithm 2 (BALANCE).

When a rebalance starts, the CC pulls the latest local directories from every
NC (splits happen locally, Section IV) and computes a new bucket → partition
assignment over the *target* partition set.  Finding the optimal assignment is
NP-hard (it embeds the partition problem), so the paper uses a greedy
algorithm:

1. Assign every unassigned bucket (displaced by node removals) to the least
   loaded partition.
2. Repeatedly try to move the *smallest* bucket off the *most* loaded
   partition onto the *least* loaded partition; stop when doing so no longer
   shrinks the gap between the two.

Load is measured in the paper's normalized bucket size |B| = 2^(D - d); ties
between equally loaded partitions are broken by node load.  A plain
round-robin assignment is also provided as the ablation baseline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..common.errors import RebalanceError
from ..hashing.bucket_id import BucketId
from ..hashing.extendible import GlobalDirectory


@dataclass(frozen=True)
class BucketMove:
    """One bucket changing partitions."""

    bucket: BucketId
    source_partition: Optional[int]  # None for a bucket with no current home
    destination_partition: int


@dataclass
class RebalancePlan:
    """The outcome of directory computation: the new directory and the moves."""

    old_directory: GlobalDirectory
    new_directory: GlobalDirectory
    moves: List[BucketMove] = field(default_factory=list)

    @property
    def moved_buckets(self) -> int:
        return len(self.moves)

    def moves_from(self, partition_id: int) -> List[BucketMove]:
        return [move for move in self.moves if move.source_partition == partition_id]

    def moves_to(self, partition_id: int) -> List[BucketMove]:
        return [move for move in self.moves if move.destination_partition == partition_id]

    def normalized_imbalance(self) -> float:
        """max/mean normalized partition load of the new directory (1.0 = perfect)."""
        load = self.new_directory.normalized_load()
        if not load:
            return 1.0
        mean = sum(load.values()) / len(load)
        return max(load.values()) / mean if mean else 1.0


class _LoadTracker:
    """Tracks per-partition and per-node normalized load during the greedy pass."""

    def __init__(
        self,
        target_partitions: Sequence[int],
        partition_to_node: Mapping[int, str],
        global_depth: int,
    ) -> None:
        self.partition_load: Dict[int, int] = {pid: 0 for pid in target_partitions}
        self.node_load: Dict[str, int] = {}
        self.partition_to_node = dict(partition_to_node)
        self.global_depth = global_depth
        self.buckets: Dict[int, List[BucketId]] = {pid: [] for pid in target_partitions}
        for pid in target_partitions:
            self.node_load.setdefault(self.partition_to_node[pid], 0)

    def size(self, bucket: BucketId) -> int:
        return bucket.normalized_size(self.global_depth)

    def assign(self, bucket: BucketId, partition: int) -> None:
        self.partition_load[partition] += self.size(bucket)
        self.node_load[self.partition_to_node[partition]] += self.size(bucket)
        self.buckets[partition].append(bucket)

    def unassign(self, bucket: BucketId, partition: int) -> None:
        self.partition_load[partition] -= self.size(bucket)
        self.node_load[self.partition_to_node[partition]] -= self.size(bucket)
        self.buckets[partition].remove(bucket)

    def load_key(self, partition: int) -> Tuple[int, int]:
        """Ordering key: (partition load, its node's load) — the paper's tie-break."""
        return (self.partition_load[partition], self.node_load[self.partition_to_node[partition]])

    def least_loaded(self) -> int:
        return min(self.partition_load, key=self.load_key)

    def most_loaded(self) -> int:
        return max(self.partition_load, key=self.load_key)


def compute_balanced_directory(
    current: GlobalDirectory,
    target_partitions: Sequence[int],
    partition_to_node: Mapping[int, str],
    max_iterations: int = 10_000,
) -> RebalancePlan:
    """Run Algorithm 2 and return the plan (new directory + bucket moves)."""
    targets = list(target_partitions)
    if not targets:
        raise RebalanceError("the target partition set is empty")
    missing = [pid for pid in targets if pid not in partition_to_node]
    if missing:
        raise RebalanceError(f"target partitions {missing} have no node mapping")
    target_set = set(targets)
    global_depth = current.global_depth
    tracker = _LoadTracker(targets, partition_to_node, global_depth)

    assignments: Dict[BucketId, int] = {}
    unassigned: List[BucketId] = []
    for bucket, partition in current.assignments.items():
        if partition in target_set:
            assignments[bucket] = partition
            tracker.assign(bucket, partition)
        else:
            unassigned.append(bucket)

    # Step 1: place displaced buckets on the least loaded partitions, largest
    # buckets first so the greedy fill packs well.
    for bucket in sorted(unassigned, key=lambda b: (-tracker.size(b), b)):
        partition = tracker.least_loaded()
        assignments[bucket] = partition
        tracker.assign(bucket, partition)

    # Step 2: iterative improvement (lines 4-11 of Algorithm 2).
    for _ in range(max_iterations):
        p_max = tracker.most_loaded()
        p_min = tracker.least_loaded()
        if p_max == p_min or not tracker.buckets[p_max]:
            break
        smallest = min(tracker.buckets[p_max], key=lambda b: (tracker.size(b), b))
        size = tracker.size(smallest)
        load_max = tracker.partition_load[p_max]
        load_min = tracker.partition_load[p_min]
        if abs((load_max - size) - (load_min + size)) < load_max - load_min:
            tracker.unassign(smallest, p_max)
            tracker.assign(smallest, p_min)
            assignments[smallest] = p_min
        else:
            break

    new_directory = GlobalDirectory(assignments)
    moves = _diff_directories(current, new_directory)
    return RebalancePlan(old_directory=current, new_directory=new_directory, moves=moves)


def compute_round_robin_directory(
    current: GlobalDirectory,
    target_partitions: Sequence[int],
) -> RebalancePlan:
    """Ablation baseline: reassign *every* bucket round-robin over the targets.

    Ignores current placement entirely, so it moves far more buckets than
    Algorithm 2 for the same final balance — the ablation benchmark
    quantifies that gap.
    """
    targets = list(target_partitions)
    if not targets:
        raise RebalanceError("the target partition set is empty")
    assignments: Dict[BucketId, int] = {}
    for index, bucket in enumerate(sorted(current.assignments.keys())):
        assignments[bucket] = targets[index % len(targets)]
    new_directory = GlobalDirectory(assignments)
    return RebalancePlan(
        old_directory=current,
        new_directory=new_directory,
        moves=_diff_directories(current, new_directory),
    )


def plan_from_directories(
    current: GlobalDirectory, new_directory: GlobalDirectory
) -> RebalancePlan:
    """Build a plan from an externally computed new directory.

    Used by the consistent-hashing strategy (whose assignment comes from a
    ring, not from Algorithm 2) and by tests that need hand-crafted layouts.
    """
    if set(current.assignments.keys()) != set(new_directory.assignments.keys()):
        raise RebalanceError("old and new directories must contain the same buckets")
    return RebalancePlan(
        old_directory=current,
        new_directory=new_directory,
        moves=_diff_directories(current, new_directory),
    )


def _diff_directories(old: GlobalDirectory, new: GlobalDirectory) -> List[BucketMove]:
    moves: List[BucketMove] = []
    old_assignments = old.assignments
    for bucket, new_partition in sorted(new.assignments.items()):
        old_partition = old_assignments.get(bucket)
        if old_partition != new_partition:
            moves.append(
                BucketMove(
                    bucket=bucket,
                    source_partition=old_partition,
                    destination_partition=new_partition,
                )
            )
    return moves
