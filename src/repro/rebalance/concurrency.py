"""Concurrency control for online rebalancing (Section V-A).

Writes that arrive while a rebalance is running are split by the rebalance
start time:

* writes *before* the start time are captured by the immutable bucket snapshot
  (the initialization-phase flush), and
* writes *after* the start time are applied normally at the source partition
  **and** their log records are replicated to the destination partition, which
  applies them to the invisible received bucket.

:class:`LogReplicator` implements the second half: it is the write path used
by data feeds while a rebalance is in flight.  It also counts the replicated
records and bytes so the operation can charge their network/CPU cost and so
Figure 7c (rebalance time vs. concurrent write rate) can be reproduced.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional, TYPE_CHECKING

from ..hashing.bucket_id import BucketId
from ..lsm.entry import Entry, estimate_value_size
from .plan import BucketMove, RebalancePlan

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..cluster.controller import DatasetRuntime


@dataclass
class ReplicationStats:
    """Counters of concurrent-write replication during one rebalance."""

    concurrent_writes: int = 0
    replicated_records: int = 0
    replicated_bytes: int = 0
    #: Replicated bytes broken down by (source node, destination node).
    bytes_by_route: Dict[str, int] = field(default_factory=dict)


class LogReplicator:
    """Applies concurrent writes at the source and replicates moving buckets'."""

    def __init__(
        self,
        runtime: "DatasetRuntime",
        plan: RebalancePlan,
        partition_nodes: Mapping[int, str],
    ) -> None:
        self.runtime = runtime
        self.plan = plan
        self.partition_nodes = dict(partition_nodes)
        self.stats = ReplicationStats()
        #: bucket -> move, for buckets that are being relocated.
        self._moving: Dict[BucketId, BucketMove] = {move.bucket: move for move in plan.moves}
        self._seqnum = 0

    def _next_seqnum(self) -> int:
        self._seqnum += 1
        return self._seqnum

    def moving_bucket_of(self, key: Any) -> Optional[BucketMove]:
        """The move affecting ``key``'s bucket, if any."""
        bucket, _partition = self.plan.old_directory.lookup_key(key)
        return self._moving.get(bucket)

    def write(self, row: Mapping[str, Any]) -> None:
        """Apply one concurrent insert during the rebalance.

        The write is routed with the *old* directory (feeds hold an immutable
        copy, Section III), applied at its current partition, and — when its
        bucket is moving — replicated to the destination's pending bucket.
        """
        key = self.runtime.spec.primary_key_of(row)
        bucket, source_partition = self.plan.old_directory.lookup_key(key)
        self.runtime.partitions[source_partition].insert(row)
        self.stats.concurrent_writes += 1
        move = self._moving.get(bucket)
        if move is None:
            return
        entry = Entry(key=key, value=dict(row), seqnum=self._next_seqnum())
        destination = self.runtime.partitions[move.destination_partition]
        destination.apply_replicated_write(move.bucket, entry)
        size = estimate_value_size(dict(row))
        self.stats.replicated_records += 1
        self.stats.replicated_bytes += size
        route = (
            f"{self.partition_nodes[source_partition]}->"
            f"{self.partition_nodes[move.destination_partition]}"
        )
        self.stats.bytes_by_route[route] = self.stats.bytes_by_route.get(route, 0) + size

    def delete(self, key: Any) -> None:
        """Apply one concurrent delete during the rebalance (tombstone path)."""
        bucket, source_partition = self.plan.old_directory.lookup_key(key)
        self.runtime.partitions[source_partition].delete(key)
        self.stats.concurrent_writes += 1
        move = self._moving.get(bucket)
        if move is None:
            return
        entry = Entry(key=key, value=None, seqnum=self._next_seqnum(), tombstone=True)
        self.runtime.partitions[move.destination_partition].apply_replicated_write(
            move.bucket, entry
        )
        self.stats.replicated_records += 1
