"""TPC-H workload substrate: schema, data generator, the 22 queries, loader."""

from .datagen import TPCHGenerator
from .queries import (
    ORDER_SENSITIVE_QUERIES,
    QUERY_NAMES,
    REAL_PLANS,
    SCAN_HEAVY_QUERIES,
    TPCH_QUERIES,
    q1_plan,
    q3_plan,
    q6_plan,
    query_spec,
)
from .schema import (
    ALL_TABLES,
    LINEITEM_INDEX,
    ORDERS_INDEX,
    TABLES_BY_NAME,
    TableSpec,
    dataset_spec,
    rows_at_scale,
)
from .workload import (
    DEFAULT_TABLES,
    FACT_TABLES,
    TPCHLoadResult,
    TPCHWorkload,
    paper_scale_factor,
)

__all__ = [
    "ALL_TABLES",
    "DEFAULT_TABLES",
    "FACT_TABLES",
    "LINEITEM_INDEX",
    "ORDERS_INDEX",
    "ORDER_SENSITIVE_QUERIES",
    "QUERY_NAMES",
    "REAL_PLANS",
    "SCAN_HEAVY_QUERIES",
    "TABLES_BY_NAME",
    "TPCHGenerator",
    "TPCHLoadResult",
    "TPCHWorkload",
    "TPCH_QUERIES",
    "TableSpec",
    "dataset_spec",
    "paper_scale_factor",
    "q1_plan",
    "q3_plan",
    "q6_plan",
    "query_spec",
    "rows_at_scale",
]
