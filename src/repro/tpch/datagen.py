"""A pure-Python TPC-H data generator (a compact dbgen).

Generates rows with the schema, key relationships, value domains and skew
characteristics of TPC-H at an arbitrary (fractional) scale factor, seeded for
reproducibility.  The paper loads SF = 100 per node; the benchmarks here use
small fractional scale factors and let the cost model's ``workload_scale``
account for the difference (see DESIGN.md).

The generator preserves the properties the evaluation depends on:

* primary keys are unique and hash-partition uniformly,
* LineItem has 1-7 lines per order (~4 on average),
* dates span 1992-1998 so the shipdate/orderdate indexes and the date-range
  predicates of the queries are meaningful,
* foreign keys reference existing customers/parts/suppliers.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict, Iterator, List, Optional

from .schema import (
    ALL_TABLES,
    CUSTOMER,
    ORDERS,
    PART,
    SUPPLIER,
    TableSpec,
    rows_at_scale,
)

_REGIONS = ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"]
_NATIONS = [
    ("ALGERIA", 0), ("ARGENTINA", 1), ("BRAZIL", 1), ("CANADA", 1), ("EGYPT", 4),
    ("ETHIOPIA", 0), ("FRANCE", 3), ("GERMANY", 3), ("INDIA", 2), ("INDONESIA", 2),
    ("IRAN", 4), ("IRAQ", 4), ("JAPAN", 2), ("JORDAN", 4), ("KENYA", 0),
    ("MOROCCO", 0), ("MOZAMBIQUE", 0), ("PERU", 1), ("CHINA", 2), ("ROMANIA", 3),
    ("SAUDI ARABIA", 4), ("VIETNAM", 2), ("RUSSIA", 3), ("UNITED KINGDOM", 3),
    ("UNITED STATES", 1),
]
_SEGMENTS = ["AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY", "HOUSEHOLD"]
_PRIORITIES = ["1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"]
_SHIPMODES = ["REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"]
_INSTRUCTIONS = ["DELIVER IN PERSON", "COLLECT COD", "NONE", "TAKE BACK RETURN"]
_CONTAINERS = ["SM CASE", "SM BOX", "MED BAG", "MED BOX", "LG CASE", "LG BOX", "WRAP JAR", "JUMBO PKG"]
_TYPES = ["STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY", "PROMO"]
_METALS = ["TIN", "NICKEL", "BRASS", "STEEL", "COPPER"]
_BRANDS = [f"Brand#{i}{j}" for i in range(1, 6) for j in range(1, 6)]


def _date(rng: random.Random, start_year: int = 1992, end_year: int = 1998) -> str:
    year = rng.randint(start_year, end_year)
    month = rng.randint(1, 12)
    day = rng.randint(1, 28)
    return f"{year:04d}-{month:02d}-{day:02d}"


def _comment(rng: random.Random, length: int = 24) -> str:
    words = ["carefully", "quickly", "furiously", "ironic", "deposits", "accounts",
             "requests", "packages", "pending", "final", "express", "regular"]
    out: List[str] = []
    while sum(len(w) + 1 for w in out) < length:
        out.append(rng.choice(words))
    return " ".join(out)


class TPCHGenerator:
    """Deterministic TPC-H row generator."""

    def __init__(self, scale_factor: float = 0.001, seed: int = 2022) -> None:
        if scale_factor <= 0:
            raise ValueError("scale_factor must be positive")
        self.scale_factor = scale_factor
        self.seed = seed

    def _table_seed(self, table: str) -> int:
        """A per-table seed that is a pure function of (seed, table, scale).

        Hashing the tuple with builtin ``hash`` would salt the table-name
        string per process (PYTHONHASHSEED), generating *different* TPC-H
        data in different processes under the same seed; blake2b is stable
        everywhere.
        """
        material = f"{self.seed}:{table}:{round(self.scale_factor, 6)!r}".encode("utf-8")
        return int.from_bytes(hashlib.blake2b(material, digest_size=8).digest(), "big")

    def _rng(self, table: str) -> random.Random:
        return random.Random(self._table_seed(table))

    def row_count(self, table: TableSpec) -> int:
        return rows_at_scale(table, self.scale_factor)

    # ------------------------------------------------------------ dimensions

    def region(self) -> Iterator[Dict]:
        rng = self._rng("region")
        for key, name in enumerate(_REGIONS):
            yield {"r_regionkey": key, "r_name": name, "r_comment": _comment(rng)}

    def nation(self) -> Iterator[Dict]:
        rng = self._rng("nation")
        for key, (name, region_key) in enumerate(_NATIONS):
            yield {
                "n_nationkey": key,
                "n_name": name,
                "n_regionkey": region_key,
                "n_comment": _comment(rng),
            }

    def supplier(self) -> Iterator[Dict]:
        rng = self._rng("supplier")
        for key in range(1, self.row_count(SUPPLIER) + 1):
            yield {
                "s_suppkey": key,
                "s_name": f"Supplier#{key:09d}",
                "s_address": _comment(rng, 16),
                "s_nationkey": rng.randint(0, 24),
                "s_phone": f"{rng.randint(10, 34)}-{rng.randint(100, 999)}-{rng.randint(100, 999)}-{rng.randint(1000, 9999)}",
                "s_acctbal": round(rng.uniform(-999.99, 9999.99), 2),
                "s_comment": _comment(rng),
            }

    def customer(self) -> Iterator[Dict]:
        rng = self._rng("customer")
        for key in range(1, self.row_count(CUSTOMER) + 1):
            yield {
                "c_custkey": key,
                "c_name": f"Customer#{key:09d}",
                "c_address": _comment(rng, 16),
                "c_nationkey": rng.randint(0, 24),
                "c_phone": f"{rng.randint(10, 34)}-{rng.randint(100, 999)}-{rng.randint(100, 999)}-{rng.randint(1000, 9999)}",
                "c_acctbal": round(rng.uniform(-999.99, 9999.99), 2),
                "c_mktsegment": rng.choice(_SEGMENTS),
                "c_comment": _comment(rng),
            }

    def part(self) -> Iterator[Dict]:
        rng = self._rng("part")
        for key in range(1, self.row_count(PART) + 1):
            type_name = f"{rng.choice(_TYPES)} {rng.choice(['ANODIZED', 'BURNISHED', 'PLATED', 'POLISHED', 'BRUSHED'])} {rng.choice(_METALS)}"
            yield {
                "p_partkey": key,
                "p_name": f"part {key} {rng.choice(_METALS).lower()}",
                "p_mfgr": f"Manufacturer#{rng.randint(1, 5)}",
                "p_brand": rng.choice(_BRANDS),
                "p_type": type_name,
                "p_size": rng.randint(1, 50),
                "p_container": rng.choice(_CONTAINERS),
                "p_retailprice": round(900 + (key % 1000) + rng.uniform(0, 100), 2),
                "p_comment": _comment(rng, 12),
            }

    def partsupp(self) -> Iterator[Dict]:
        rng = self._rng("partsupp")
        num_parts = self.row_count(PART)
        num_suppliers = self.row_count(SUPPLIER)
        per_part = 4
        for part_key in range(1, num_parts + 1):
            for i in range(per_part):
                supp_key = ((part_key + i * (num_parts // per_part + 1)) % num_suppliers) + 1
                yield {
                    "ps_partkey": part_key,
                    "ps_suppkey": supp_key,
                    "ps_availqty": rng.randint(1, 9999),
                    "ps_supplycost": round(rng.uniform(1.0, 1000.0), 2),
                    "ps_comment": _comment(rng, 16),
                }

    # ------------------------------------------------------------- fact data

    def orders(self) -> Iterator[Dict]:
        rng = self._rng("orders")
        num_customers = max(1, self.row_count(CUSTOMER))
        for key in range(1, self.row_count(ORDERS) + 1):
            order_date = _date(rng, 1992, 1998)
            yield {
                "o_orderkey": key,
                "o_custkey": rng.randint(1, num_customers),
                "o_orderstatus": rng.choice(["O", "F", "P"]),
                "o_totalprice": round(rng.uniform(850.0, 555000.0), 2),
                "o_orderdate": order_date,
                "o_orderpriority": rng.choice(_PRIORITIES),
                "o_clerk": f"Clerk#{rng.randint(1, 1000):09d}",
                "o_shippriority": 0,
                "o_comment": _comment(rng),
            }

    def lineitem(self, orders_rows: Optional[List[Dict]] = None) -> Iterator[Dict]:
        """Generate line items; 1-7 per order, dates derived from the order."""
        rng = self._rng("lineitem")
        num_parts = max(1, self.row_count(PART))
        num_suppliers = max(1, self.row_count(SUPPLIER))
        if orders_rows is None:
            orders_rows = list(self.orders())
        for order in orders_rows:
            lines = rng.randint(1, 7)
            order_year = int(order["o_orderdate"][:4])
            for line_number in range(1, lines + 1):
                quantity = rng.randint(1, 50)
                extended = round(quantity * rng.uniform(900.0, 2000.0), 2)
                ship_year = min(1998, order_year + rng.choice([0, 0, 0, 1]))
                ship_date = f"{ship_year:04d}-{rng.randint(1, 12):02d}-{rng.randint(1, 28):02d}"
                yield {
                    "l_orderkey": order["o_orderkey"],
                    "l_linenumber": line_number,
                    "l_partkey": rng.randint(1, num_parts),
                    "l_suppkey": rng.randint(1, num_suppliers),
                    "l_quantity": quantity,
                    "l_extendedprice": extended,
                    "l_discount": round(rng.uniform(0.0, 0.1), 2),
                    "l_tax": round(rng.uniform(0.0, 0.08), 2),
                    "l_returnflag": rng.choice(["R", "A", "N"]),
                    "l_linestatus": rng.choice(["O", "F"]),
                    "l_shipdate": ship_date,
                    "l_commitdate": _date(rng, ship_year, min(1998, ship_year + 1)),
                    "l_receiptdate": _date(rng, ship_year, min(1998, ship_year + 1)),
                    "l_shipinstruct": rng.choice(_INSTRUCTIONS),
                    "l_shipmode": rng.choice(_SHIPMODES),
                    "l_comment": _comment(rng, 10),
                }

    # -------------------------------------------------------------- dispatch

    def table(self, name: str) -> Iterator[Dict]:
        """Generate any table by name."""
        generators = {
            "region": self.region,
            "nation": self.nation,
            "supplier": self.supplier,
            "customer": self.customer,
            "part": self.part,
            "partsupp": self.partsupp,
            "orders": self.orders,
            "lineitem": self.lineitem,
        }
        if name not in generators:
            raise KeyError(f"unknown TPC-H table {name!r}")
        return generators[name]()

    def all_tables(self) -> Dict[str, List[Dict]]:
        """Materialise every table (orders shared with lineitem for FK consistency)."""
        tables: Dict[str, List[Dict]] = {}
        for table in ALL_TABLES:
            if table.name == "lineitem":
                continue
            tables[table.name] = list(self.table(table.name))
        tables["lineitem"] = list(self.lineitem(orders_rows=tables["orders"]))
        return tables
