"""The 22 TPC-H queries as access-pattern specs, plus real plans for a few.

The Figure 8/9 experiments compare per-query execution time across
rebalancing approaches.  What differs between approaches is the *storage
access* portion of each query (how many buckets a primary scan touches,
whether a merge-sort over buckets is needed, how balanced the scanned data
is); the relational work above the scan is identical.  Each query is therefore
described by a :class:`~repro.query.executor.QuerySpec`: which datasets and
indexes it reads, how many times, how selective it is, how compute-heavy its
pipeline is, and whether it needs primary-key-ordered scans.

The characteristics encoded here follow the TPC-H query definitions and the
paper's observations:

* q6 / q14 / q15 are index-only on the LineItem covering index;
* q4 / q3 / q10 use the Orders covering index for their date predicates;
* q1, q17, q18 and q21 are scan-heavy over LineItem (q21 reads it several
  times; q17/q18 do full scans feeding a group-by);
* q18 groups on a prefix of LineItem's primary key and therefore requires the
  scan to return records in primary-key order (the bucketed LSM-tree must
  merge-sort its buckets — the overhead visible in Figure 8);
* the remaining queries are join/aggregation dominated ("relatively
  computation heavy", Section VI-D), so their operator depth is high and the
  scan portion is comparatively small.

Three queries (q1, q3, q6) additionally ship real operator plans used by the
examples and tests to produce actual answers.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from ..query.executor import (
    ACCESS_FULL_SCAN,
    ACCESS_SECONDARY_INDEX,
    QueryContext,
    QuerySpec,
    TableAccess,
)
from ..query.operators import filter_rows, hash_group_by, hash_join, limit, order_by, scalar_aggregate
from .schema import LINEITEM_INDEX, ORDERS_INDEX


def _lineitem_scan(selectivity: float = 1.0, scan_count: int = 1) -> TableAccess:
    return TableAccess("lineitem", ACCESS_FULL_SCAN, selectivity=selectivity, scan_count=scan_count)


def _lineitem_index(selectivity: float) -> TableAccess:
    return TableAccess(
        "lineitem", ACCESS_SECONDARY_INDEX, index_name=LINEITEM_INDEX.name, selectivity=selectivity
    )


def _orders_scan(selectivity: float = 1.0) -> TableAccess:
    return TableAccess("orders", ACCESS_FULL_SCAN, selectivity=selectivity)


def _orders_index(selectivity: float) -> TableAccess:
    return TableAccess(
        "orders", ACCESS_SECONDARY_INDEX, index_name=ORDERS_INDEX.name, selectivity=selectivity
    )


def _scan(dataset: str, selectivity: float = 1.0) -> TableAccess:
    return TableAccess(dataset, ACCESS_FULL_SCAN, selectivity=selectivity)


#: All 22 queries.  operator_depth is the compute-heaviness knob; the
#: scan-heavy queries called out by the paper (q17, q18, q21, and q1 to a
#: lesser degree) have low depth so their runtime is dominated by the scans.
TPCH_QUERIES: Dict[str, QuerySpec] = {
    "q1": QuerySpec(
        "q1",
        [_lineitem_scan(selectivity=0.98)],
        operator_depth=4,
        description="pricing summary report: full LineItem scan + aggregation",
    ),
    "q2": QuerySpec(
        "q2",
        [_scan("partsupp", 0.2), _scan("part", 0.04), _scan("supplier", 1.0), _scan("nation", 1.0), _scan("region", 0.2)],
        operator_depth=12,
        description="minimum cost supplier join stack",
    ),
    "q3": QuerySpec(
        "q3",
        [_lineitem_scan(0.54), _orders_index(0.48), _scan("customer", 0.2)],
        operator_depth=10,
        description="shipping priority: customer/orders/lineitem join",
    ),
    "q4": QuerySpec(
        "q4",
        [_orders_index(0.04), _lineitem_scan(0.63)],
        operator_depth=8,
        description="order priority checking (EXISTS semi-join)",
    ),
    "q5": QuerySpec(
        "q5",
        [_lineitem_scan(1.0), _orders_index(0.15), _scan("customer", 1.0), _scan("supplier", 1.0), _scan("nation", 1.0), _scan("region", 0.2)],
        operator_depth=14,
        description="local supplier volume: 6-way join",
    ),
    "q6": QuerySpec(
        "q6",
        [_lineitem_index(0.02)],
        operator_depth=2,
        description="forecasting revenue change: index-only LineItem aggregate",
    ),
    "q7": QuerySpec(
        "q7",
        [_lineitem_scan(0.3), _orders_scan(1.0), _scan("customer", 1.0), _scan("supplier", 1.0), _scan("nation", 1.0)],
        operator_depth=14,
        description="volume shipping between two nations",
    ),
    "q8": QuerySpec(
        "q8",
        [_lineitem_scan(1.0), _orders_scan(0.3), _scan("customer", 1.0), _scan("supplier", 1.0), _scan("part", 0.01), _scan("nation", 1.0), _scan("region", 0.2)],
        operator_depth=16,
        description="national market share",
    ),
    "q9": QuerySpec(
        "q9",
        [_lineitem_scan(1.0), _orders_scan(1.0), _scan("part", 0.05), _scan("partsupp", 1.0), _scan("supplier", 1.0), _scan("nation", 1.0)],
        operator_depth=16,
        description="product type profit measure",
    ),
    "q10": QuerySpec(
        "q10",
        [_lineitem_scan(0.25), _orders_index(0.04), _scan("customer", 1.0), _scan("nation", 1.0)],
        operator_depth=10,
        description="returned item reporting",
    ),
    "q11": QuerySpec(
        "q11",
        [_scan("partsupp", 1.0), _scan("supplier", 1.0), _scan("nation", 1.0)],
        operator_depth=8,
        description="important stock identification",
    ),
    "q12": QuerySpec(
        "q12",
        [_lineitem_scan(0.01), _orders_scan(1.0)],
        operator_depth=6,
        description="shipping modes and order priority",
    ),
    "q13": QuerySpec(
        "q13",
        [_scan("customer", 1.0), _orders_scan(0.98)],
        operator_depth=8,
        description="customer distribution (left outer join + group-by)",
    ),
    "q14": QuerySpec(
        "q14",
        [_lineitem_index(0.015), _scan("part", 1.0)],
        operator_depth=5,
        description="promotion effect: LineItem index join part",
    ),
    "q15": QuerySpec(
        "q15",
        [_lineitem_index(0.04), _scan("supplier", 1.0)],
        operator_depth=5,
        description="top supplier (revenue view)",
    ),
    "q16": QuerySpec(
        "q16",
        [_scan("partsupp", 1.0), _scan("part", 0.1), _scan("supplier", 0.01)],
        operator_depth=8,
        description="parts/supplier relationship",
    ),
    "q17": QuerySpec(
        "q17",
        [_lineitem_scan(1.0), _scan("part", 0.001)],
        operator_depth=3,
        description="small-quantity-order revenue: full LineItem scan + group-by (scan-heavy)",
    ),
    "q18": QuerySpec(
        "q18",
        [_lineitem_scan(1.0), _orders_scan(1.0), _scan("customer", 1.0)],
        operator_depth=4,
        requires_primary_key_order=True,
        description="large volume customer: group-by on LineItem primary-key prefix (needs key order)",
    ),
    "q19": QuerySpec(
        "q19",
        [_lineitem_scan(0.02), _scan("part", 0.01)],
        operator_depth=6,
        description="discounted revenue (disjunctive predicates)",
    ),
    "q20": QuerySpec(
        "q20",
        [_lineitem_index(0.07), _scan("part", 0.01), _scan("partsupp", 0.2), _scan("supplier", 1.0), _scan("nation", 1.0)],
        operator_depth=10,
        description="potential part promotion",
    ),
    "q21": QuerySpec(
        "q21",
        [_lineitem_scan(1.0, scan_count=3), _orders_scan(0.5), _scan("supplier", 1.0), _scan("nation", 1.0)],
        operator_depth=5,
        description="suppliers who kept orders waiting: LineItem scanned multiple times (scan-heavy)",
    ),
    "q22": QuerySpec(
        "q22",
        [_scan("customer", 0.25), _orders_scan(1.0)],
        operator_depth=7,
        description="global sales opportunity",
    ),
}

QUERY_NAMES: List[str] = [f"q{i}" for i in range(1, 23)]

#: The queries the paper singles out as scan-heavy / order-sensitive.
SCAN_HEAVY_QUERIES = ("q17", "q18", "q21")
ORDER_SENSITIVE_QUERIES = ("q18",)


def query_spec(name: str) -> QuerySpec:
    """The access-pattern :class:`QuerySpec` for a TPC-H query (``"q1"`` ..
    ``"q22"``) — the figure-experiment mode, priced by the cost model without
    producing real rows (use :func:`q1_plan`/:func:`q3_plan`/:func:`q6_plan`
    for actual answers)."""
    try:
        return TPCH_QUERIES[name]
    except KeyError:
        raise KeyError(f"unknown TPC-H query {name!r}; expected q1..q22") from None


# --------------------------------------------------------------------------
# Real operator plans (used by examples/tests to produce actual answers).
# --------------------------------------------------------------------------


def q1_plan(date_cutoff: str = "1998-09-02") -> Callable[[QueryContext], List[dict]]:
    """TPC-H q1: pricing summary report grouped by returnflag/linestatus."""

    def plan(context: QueryContext) -> List[dict]:
        rows = filter_rows(
            context.scan("lineitem"),
            lambda row: row["l_shipdate"] <= date_cutoff,
            stats=context.operator_stats,
        )
        grouped = hash_group_by(
            rows,
            key=lambda row: (row["l_returnflag"], row["l_linestatus"]),
            aggregates={
                "sum_qty": ("sum", lambda r: r["l_quantity"]),
                "sum_base_price": ("sum", lambda r: r["l_extendedprice"]),
                "sum_disc_price": ("sum", lambda r: r["l_extendedprice"] * (1 - r["l_discount"])),
                "avg_qty": ("avg", lambda r: r["l_quantity"]),
                "avg_price": ("avg", lambda r: r["l_extendedprice"]),
                "count_order": ("count", lambda r: 1),
            },
            stats=context.operator_stats,
        )
        return order_by(grouped, key=lambda row: row["group_key"], stats=context.operator_stats)

    return plan


def q6_plan(
    date_low: str = "1994-01-01",
    date_high: str = "1995-01-01",
    discount_low: float = 0.05,
    discount_high: float = 0.07,
    max_quantity: int = 24,
) -> Callable[[QueryContext], dict]:
    """TPC-H q6: revenue change forecast, served by the LineItem covering index."""

    def plan(context: QueryContext) -> dict:
        rows = filter_rows(
            context.scan_index("lineitem", LINEITEM_INDEX.name),
            lambda row: (
                date_low <= row["l_shipdate"] < date_high
                and discount_low <= row["l_discount"] <= discount_high
                and row["l_quantity"] < max_quantity
            ),
            stats=context.operator_stats,
        )
        return scalar_aggregate(
            rows,
            {"revenue": ("sum", lambda r: r["l_extendedprice"] * r["l_discount"])},
            stats=context.operator_stats,
        )

    return plan


def q3_plan(segment: str = "BUILDING", date_cutoff: str = "1995-03-15") -> Callable[[QueryContext], List[dict]]:
    """TPC-H q3: shipping priority — customer ⋈ orders ⋈ lineitem, top 10."""

    def plan(context: QueryContext) -> List[dict]:
        customers = filter_rows(
            context.scan("customer"),
            lambda row: row["c_mktsegment"] == segment,
            stats=context.operator_stats,
        )
        orders = filter_rows(
            context.scan("orders"),
            lambda row: row["o_orderdate"] < date_cutoff,
            stats=context.operator_stats,
        )
        customer_orders = hash_join(
            orders,
            customers,
            left_key=lambda row: row["o_custkey"],
            right_key=lambda row: row["c_custkey"],
            stats=context.operator_stats,
        )
        items = filter_rows(
            context.scan("lineitem"),
            lambda row: row["l_shipdate"] > date_cutoff,
            stats=context.operator_stats,
        )
        joined = hash_join(
            items,
            customer_orders,
            left_key=lambda row: row["l_orderkey"],
            right_key=lambda row: row["o_orderkey"],
            stats=context.operator_stats,
            name="join_lineitem_orders",
        )
        grouped = hash_group_by(
            joined,
            key=lambda row: (row["l_orderkey"], row["o_orderdate"], row["o_shippriority"]),
            aggregates={
                "revenue": ("sum", lambda r: r["l_extendedprice"] * (1 - r["l_discount"])),
            },
            stats=context.operator_stats,
        )
        ranked = order_by(grouped, key=lambda row: row["revenue"], descending=True)
        return limit(ranked, 10)

    return plan


REAL_PLANS: Dict[str, Callable[..., Callable[[QueryContext], object]]] = {
    "q1": q1_plan,
    "q3": q3_plan,
    "q6": q6_plan,
}
