"""Loading the TPC-H workload into a simulated cluster.

The evaluation setup (Section VI-A): every TPC-H table is a hash-partitioned
dataset with the two covering secondary indexes on LineItem and Orders; the
scale factor grows with the cluster ("100 times the number of NCs"), which
:func:`paper_scale_factor` mirrors at a reduced base scale.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Sequence

from ..cluster.reports import IngestReport
from .datagen import TPCHGenerator
from .schema import TABLES_BY_NAME, dataset_spec

#: Tables that dominate storage and the evaluation; benchmarks that need to
#: run fast can load only these.
FACT_TABLES = ("orders", "lineitem")
DEFAULT_TABLES = ("customer", "part", "supplier", "partsupp", "nation", "region") + FACT_TABLES


def paper_scale_factor(num_nodes: int, base_scale_per_node: float = 0.0005) -> float:
    """Scale factor proportional to the cluster size, as in the paper.

    The paper uses SF = 100 x nodes; benchmarks here use
    ``base_scale_per_node`` x nodes and let the cost model's workload scale
    bridge the remaining factor.
    """
    if num_nodes < 1:
        raise ValueError("num_nodes must be at least 1")
    return base_scale_per_node * num_nodes


@dataclass
class TPCHLoadResult:
    """Outcome of loading TPC-H into a cluster."""

    scale_factor: float
    reports: Dict[str, IngestReport] = field(default_factory=dict)
    row_counts: Dict[str, int] = field(default_factory=dict)

    @property
    def total_rows(self) -> int:
        return sum(self.row_counts.values())

    @property
    def total_simulated_seconds(self) -> float:
        """Load time under slowest-node semantics, summed over datasets
        (AsterixDB feeds load datasets one after another)."""
        return sum(report.simulated_seconds for report in self.reports.values())


class TPCHWorkload:
    """Generates and loads TPC-H data into a :class:`SimulatedCluster`."""

    def __init__(self, scale_factor: float = 0.001, seed: int = 2022) -> None:
        self.scale_factor = scale_factor
        self.seed = seed
        self.generator = TPCHGenerator(scale_factor=scale_factor, seed=seed)

    def create_datasets(self, cluster: Any, tables: Sequence[str] = DEFAULT_TABLES) -> None:
        """Create one dataset per TPC-H table (with the paper's indexes)."""
        for name in tables:
            cluster.create_dataset_from_spec(dataset_spec(TABLES_BY_NAME[name]))

    def load(
        self,
        cluster: Any,
        tables: Sequence[str] = DEFAULT_TABLES,
        create: bool = True,
        batch_size: int = 2000,
    ) -> TPCHLoadResult:
        """Generate and ingest the requested tables; returns per-table reports."""
        if create:
            self.create_datasets(cluster, tables)
        result = TPCHLoadResult(scale_factor=self.scale_factor)
        materialised = {}
        if "lineitem" in tables:
            # LineItem rows derive from Orders rows; generate Orders once so
            # the foreign keys agree even if Orders itself is not loaded.
            materialised["orders"] = list(self.generator.orders())
        for name in tables:
            if name == "lineitem":
                rows: List[dict] = list(self.generator.lineitem(orders_rows=materialised["orders"]))
            elif name == "orders" and "orders" in materialised:
                rows = materialised["orders"]
            else:
                rows = list(self.generator.table(name))
            # Feed-path ingestion (the non-deprecated route; Database handles
            # and legacy ``cluster.ingest`` both funnel through the same feed).
            report = cluster.feed(name, batch_size=batch_size).ingest(rows)
            result.reports[name] = report
            result.row_counts[name] = len(rows)
        return result

    def concurrent_lineitem_rows(self, count: int, start_orderkey: int = 50_000_000) -> List[dict]:
        """Fresh LineItem rows used as concurrent writes during a rebalance
        (the Figure 7c experiment inserts new records into LineItem)."""
        generator = TPCHGenerator(scale_factor=self.scale_factor, seed=self.seed + 17)
        orders = []
        # 1-7 line items per order; generating one order per requested row
        # guarantees enough rows even in the unluckiest draw.
        needed_orders = max(1, count)
        for index, order in enumerate(generator.orders()):
            if index >= needed_orders:
                break
            order = dict(order)
            order["o_orderkey"] = start_orderkey + index
            orders.append(order)
        rows = []
        for row in generator.lineitem(orders_rows=orders):
            rows.append(row)
            if len(rows) >= count:
                break
        return rows
