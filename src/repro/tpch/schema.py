"""TPC-H schema: table definitions, primary keys, and the paper's secondary indexes.

The paper evaluates on TPC-H with two covering secondary indexes to enable
index-only plans (Section VI-A):

* LineItem index on (l_shipdate, l_partkey, l_suppkey, l_extendedprice,
  l_discount, l_quantity),
* Orders index on (o_orderdate, o_custkey, o_shippriority, o_orderpriority).

Cardinalities below are per scale factor 1 (SF 1), from the TPC-H
specification; the generator scales them linearly (orders/lineitem) or keeps
them fixed (nation/region) exactly as dbgen does.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..cluster.dataset import DatasetSpec, SecondaryIndexSpec


@dataclass(frozen=True)
class TableSpec:
    """Shape of one TPC-H table."""

    name: str
    primary_key: Tuple[str, ...]
    columns: Tuple[str, ...]
    #: Rows per scale factor 1; ``fixed`` tables ignore the scale factor.
    rows_per_sf: int
    fixed: bool = False


REGION = TableSpec(
    name="region",
    primary_key=("r_regionkey",),
    columns=("r_regionkey", "r_name", "r_comment"),
    rows_per_sf=5,
    fixed=True,
)

NATION = TableSpec(
    name="nation",
    primary_key=("n_nationkey",),
    columns=("n_nationkey", "n_name", "n_regionkey", "n_comment"),
    rows_per_sf=25,
    fixed=True,
)

SUPPLIER = TableSpec(
    name="supplier",
    primary_key=("s_suppkey",),
    columns=("s_suppkey", "s_name", "s_address", "s_nationkey", "s_phone", "s_acctbal", "s_comment"),
    rows_per_sf=10_000,
)

CUSTOMER = TableSpec(
    name="customer",
    primary_key=("c_custkey",),
    columns=(
        "c_custkey",
        "c_name",
        "c_address",
        "c_nationkey",
        "c_phone",
        "c_acctbal",
        "c_mktsegment",
        "c_comment",
    ),
    rows_per_sf=150_000,
)

PART = TableSpec(
    name="part",
    primary_key=("p_partkey",),
    columns=(
        "p_partkey",
        "p_name",
        "p_mfgr",
        "p_brand",
        "p_type",
        "p_size",
        "p_container",
        "p_retailprice",
        "p_comment",
    ),
    rows_per_sf=200_000,
)

PARTSUPP = TableSpec(
    name="partsupp",
    primary_key=("ps_partkey", "ps_suppkey"),
    columns=("ps_partkey", "ps_suppkey", "ps_availqty", "ps_supplycost", "ps_comment"),
    rows_per_sf=800_000,
)

ORDERS = TableSpec(
    name="orders",
    primary_key=("o_orderkey",),
    columns=(
        "o_orderkey",
        "o_custkey",
        "o_orderstatus",
        "o_totalprice",
        "o_orderdate",
        "o_orderpriority",
        "o_clerk",
        "o_shippriority",
        "o_comment",
    ),
    rows_per_sf=1_500_000,
)

LINEITEM = TableSpec(
    name="lineitem",
    primary_key=("l_orderkey", "l_linenumber"),
    columns=(
        "l_orderkey",
        "l_linenumber",
        "l_partkey",
        "l_suppkey",
        "l_quantity",
        "l_extendedprice",
        "l_discount",
        "l_tax",
        "l_returnflag",
        "l_linestatus",
        "l_shipdate",
        "l_commitdate",
        "l_receiptdate",
        "l_shipinstruct",
        "l_shipmode",
        "l_comment",
    ),
    rows_per_sf=6_000_000,
)

ALL_TABLES: Tuple[TableSpec, ...] = (
    REGION,
    NATION,
    SUPPLIER,
    CUSTOMER,
    PART,
    PARTSUPP,
    ORDERS,
    LINEITEM,
)

TABLES_BY_NAME: Dict[str, TableSpec] = {table.name: table for table in ALL_TABLES}


#: The covering secondary indexes the paper builds (Section VI-A).
LINEITEM_INDEX = SecondaryIndexSpec(
    name="idx_lineitem_shipdate",
    key_fields=("l_shipdate",),
    included_fields=("l_partkey", "l_suppkey", "l_extendedprice", "l_discount", "l_quantity"),
)

ORDERS_INDEX = SecondaryIndexSpec(
    name="idx_orders_orderdate",
    key_fields=("o_orderdate",),
    included_fields=("o_custkey", "o_shippriority", "o_orderpriority"),
)


def dataset_spec(table: TableSpec) -> DatasetSpec:
    """Build the AsterixDB dataset spec for a TPC-H table, with the paper's
    secondary indexes on LineItem and Orders."""
    secondary: List[SecondaryIndexSpec] = []
    if table.name == "lineitem":
        secondary.append(LINEITEM_INDEX)
    elif table.name == "orders":
        secondary.append(ORDERS_INDEX)
    return DatasetSpec(
        name=table.name,
        primary_key=table.primary_key,
        secondary_indexes=tuple(secondary),
    )


def rows_at_scale(table: TableSpec, scale_factor: float) -> int:
    """Row count of a table at a given scale factor."""
    if table.fixed:
        return table.rows_per_sf
    return max(1, int(table.rows_per_sf * scale_factor))
