"""A lightweight synchronous event bus for cluster lifecycle hooks.

The client API (:mod:`repro.api`) exposes ``db.on("rebalance.start", cb)``;
this module is the implementation, kept in :mod:`repro.common` so the lower
layers (controller, feed, rebalance operation) can emit events without
importing the API package that sits above them.

Events are plain named payloads.  Subscribers register a dotted-name pattern
(``fnmatch`` semantics, so ``"rebalance.*"`` matches every rebalance event and
``"*"`` matches everything) and receive :class:`Event` objects in emission
order; the monotonically increasing ``seq`` lets tests and metrics sinks
assert ordering across subscribers.

Routing is *compiled*: patterns are classified at :meth:`EventBus.on` time
into an exact-name table and a (small) list of wildcard matchers whose
``fnmatch`` translation is regex-compiled once.  ``emit`` resolves an event
name through a per-name route cache that is invalidated on subscribe and
unsubscribe, so the per-emission cost is one dict hit instead of an
``fnmatchcase`` scan over every subscription — the event bus sits under every
operation sample of the traffic engine, so this path is hot.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from fnmatch import translate as _fnmatch_translate
from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple


@dataclass(frozen=True)
class Event:
    """One emitted event: a dotted name plus an arbitrary payload."""

    name: str
    seq: int
    payload: Mapping[str, Any] = field(default_factory=dict)

    def __getitem__(self, key: str) -> Any:
        return self.payload[key]

    def get(self, key: str, default: Any = None) -> Any:
        return self.payload.get(key, default)


EventCallback = Callable[[Event], None]

#: Characters that make a pattern a wildcard under fnmatch semantics.
_WILDCARD_CHARS = frozenset("*?[")


def _is_exact(pattern: str) -> bool:
    """True when ``pattern`` matches exactly one literal event name."""
    return not (_WILDCARD_CHARS & set(pattern))


class Subscription:
    """Handle returned by :meth:`EventBus.on`; ``cancel()`` unsubscribes."""

    __slots__ = ("bus", "pattern", "callback", "active", "order", "_matcher")

    def __init__(self, bus: "EventBus", pattern: str, callback: EventCallback, order: int = 0) -> None:
        self.bus = bus
        self.pattern = pattern
        self.callback = callback
        self.active = True
        #: Global subscription order; emission order across the exact and
        #: wildcard tables is reconstructed by sorting on it.
        self.order = order
        #: Compiled regex ``match`` for wildcard patterns, None for exact ones.
        self._matcher: Optional[Callable[[str], Any]] = (
            None if _is_exact(pattern) else re.compile(_fnmatch_translate(pattern)).match
        )

    def matches(self, name: str) -> bool:
        if self._matcher is None:
            return name == self.pattern
        return self._matcher(name) is not None

    def cancel(self) -> None:
        if self.active:
            self.bus.off(self)
            self.active = False

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "active" if self.active else "cancelled"
        return f"Subscription({self.pattern!r}, {state})"


class EventBus:
    """Synchronous publish/subscribe over dotted event names.

    Callbacks run inline on the emitting thread in subscription order;
    exceptions propagate to the emitter (a misbehaving metrics hook should be
    loud, not silently swallowed).
    """

    def __init__(self) -> None:
        #: Exact-name subscriptions: name -> {order: Subscription}.  The inner
        #: dicts are keyed by the subscription's order id so ``off`` is an
        #: O(1) pop instead of a ``list.remove`` scan.
        self._exact: Dict[str, Dict[int, Subscription]] = {}
        #: Wildcard subscriptions, keyed by order id (same O(1) removal).
        self._wildcards: Dict[int, Subscription] = {}
        #: Per-event-name compiled routes, invalidated on (un)subscribe.  A
        #: route is the snapshot ``emit`` iterates, so steady-state emission
        #: is one dict hit — no matching at all.
        self._routes: Dict[str, Tuple[Subscription, ...]] = {}
        self._seq = 0
        self._next_order = 0

    # ------------------------------------------------------------- subscribe

    def on(self, pattern: str, callback: EventCallback) -> Subscription:
        """Subscribe ``callback`` to every event matching ``pattern``."""
        if not pattern:
            raise ValueError("event pattern must not be empty")
        subscription = Subscription(self, pattern, callback, order=self._next_order)
        self._next_order += 1
        if subscription._matcher is None:
            self._exact.setdefault(pattern, {})[subscription.order] = subscription
            # Only routes for this exact name are stale.
            self._routes.pop(pattern, None)
        else:
            self._wildcards[subscription.order] = subscription
            # A wildcard can change the route of any name.
            self._routes.clear()
        return subscription

    def once(self, pattern: str, callback: EventCallback) -> Subscription:
        """Subscribe for a single matching event, then auto-cancel."""

        def _fire_once(event: Event) -> None:
            subscription.cancel()
            callback(event)

        subscription = self.on(pattern, _fire_once)
        return subscription

    def off(self, subscription: Subscription) -> None:
        """Remove a subscription (no-op if it is already gone)."""
        if subscription._matcher is None:
            bucket = self._exact.get(subscription.pattern)
            if bucket is None or bucket.pop(subscription.order, None) is None:
                return
            if not bucket:
                del self._exact[subscription.pattern]
            self._routes.pop(subscription.pattern, None)
        else:
            if self._wildcards.pop(subscription.order, None) is None:
                return
            self._routes.clear()

    # ---------------------------------------------------------------- routing

    def _compile_route(self, name: str) -> Tuple[Subscription, ...]:
        """Merge the exact bucket and matching wildcards in subscription order."""
        matched: List[Subscription] = list(self._exact.get(name, {}).values())
        for subscription in self._wildcards.values():
            if subscription.matches(name):
                matched.append(subscription)
        matched.sort(key=lambda subscription: subscription.order)
        route = tuple(matched)
        self._routes[name] = route
        return route

    def has_subscribers(self, name: str) -> bool:
        """Fast-path probe: would an event called ``name`` reach anyone?

        Emitters on the hot path use this to skip building the payload dict
        entirely when nobody is listening (note that skipped emissions do not
        consume a ``seq``).
        """
        route = self._routes.get(name)
        if route is None:
            route = self._compile_route(name)
        return bool(route)

    # ----------------------------------------------------------------- emit

    def emit(self, name: str, **payload: Any) -> Event:
        """Emit an event to every matching subscriber; returns the event.

        The compiled route is snapshotted per emission, so callbacks may
        freely subscribe or unsubscribe (themselves or others) mid-emission:
        a subscription added during the emission does not see the current
        event, and one cancelled during the emission no longer fires for it
        (the ``active`` flag is re-checked immediately before each callback).
        Nested emits take their own snapshots and are unaffected.
        """
        route = self._routes.get(name)
        if route is None:
            route = self._compile_route(name)
        event = Event(name=name, seq=self._seq, payload=payload)
        self._seq += 1
        for subscription in route:
            if subscription.active:
                subscription.callback(event)
        return event

    # ------------------------------------------------------------ inspection

    def _subscriptions_in_order(self) -> List[Subscription]:
        merged: List[Subscription] = list(self._wildcards.values())
        for bucket in self._exact.values():
            merged.extend(bucket.values())
        merged.sort(key=lambda subscription: subscription.order)
        return merged

    @property
    def subscriber_count(self) -> int:
        return len(self._wildcards) + sum(len(bucket) for bucket in self._exact.values())

    def patterns(self) -> List[str]:
        return [subscription.pattern for subscription in self._subscriptions_in_order()]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"EventBus(subscribers={self.subscriber_count}, emitted={self._seq})"
