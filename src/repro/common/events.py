"""A lightweight synchronous event bus for cluster lifecycle hooks.

The client API (:mod:`repro.api`) exposes ``db.on("rebalance.start", cb)``;
this module is the implementation, kept in :mod:`repro.common` so the lower
layers (controller, feed, rebalance operation) can emit events without
importing the API package that sits above them.

Events are plain named payloads.  Subscribers register a dotted-name pattern
(``fnmatch`` semantics, so ``"rebalance.*"`` matches every rebalance event and
``"*"`` matches everything) and receive :class:`Event` objects in emission
order; the monotonically increasing ``seq`` lets tests and metrics sinks
assert ordering across subscribers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fnmatch import fnmatchcase
from typing import Any, Callable, List, Mapping, Tuple


@dataclass(frozen=True)
class Event:
    """One emitted event: a dotted name plus an arbitrary payload."""

    name: str
    seq: int
    payload: Mapping[str, Any] = field(default_factory=dict)

    def __getitem__(self, key: str) -> Any:
        return self.payload[key]

    def get(self, key: str, default: Any = None) -> Any:
        return self.payload.get(key, default)


EventCallback = Callable[[Event], None]


class Subscription:
    """Handle returned by :meth:`EventBus.on`; ``cancel()`` unsubscribes."""

    def __init__(self, bus: "EventBus", pattern: str, callback: EventCallback):
        self.bus = bus
        self.pattern = pattern
        self.callback = callback
        self.active = True

    def cancel(self) -> None:
        if self.active:
            self.bus.off(self)
            self.active = False

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "active" if self.active else "cancelled"
        return f"Subscription({self.pattern!r}, {state})"


class EventBus:
    """Synchronous publish/subscribe over dotted event names.

    Callbacks run inline on the emitting thread in subscription order;
    exceptions propagate to the emitter (a misbehaving metrics hook should be
    loud, not silently swallowed).
    """

    def __init__(self) -> None:
        self._subscriptions: List[Subscription] = []
        self._seq = 0

    # ------------------------------------------------------------- subscribe

    def on(self, pattern: str, callback: EventCallback) -> Subscription:
        """Subscribe ``callback`` to every event matching ``pattern``."""
        if not pattern:
            raise ValueError("event pattern must not be empty")
        subscription = Subscription(self, pattern, callback)
        self._subscriptions.append(subscription)
        return subscription

    def once(self, pattern: str, callback: EventCallback) -> Subscription:
        """Subscribe for a single matching event, then auto-cancel."""

        def _fire_once(event: Event) -> None:
            subscription.cancel()
            callback(event)

        subscription = self.on(pattern, _fire_once)
        return subscription

    def off(self, subscription: Subscription) -> None:
        """Remove a subscription (no-op if it is already gone)."""
        try:
            self._subscriptions.remove(subscription)
        except ValueError:
            pass

    # ----------------------------------------------------------------- emit

    def emit(self, name: str, **payload: Any) -> Event:
        """Emit an event to every matching subscriber; returns the event.

        The subscriber list is snapshotted per emission, so callbacks may
        freely subscribe or unsubscribe (themselves or others) mid-emission:
        a subscription added during the emission does not see the current
        event, and one cancelled during the emission no longer fires for it
        (the ``active`` flag is re-checked immediately before each callback).
        Nested emits take their own snapshots and are unaffected.
        """
        event = Event(name=name, seq=self._seq, payload=payload)
        self._seq += 1
        snapshot: Tuple[Subscription, ...] = tuple(self._subscriptions)
        for subscription in snapshot:
            if subscription.active and fnmatchcase(name, subscription.pattern):
                subscription.callback(event)
        return event

    # ------------------------------------------------------------ inspection

    @property
    def subscriber_count(self) -> int:
        return len(self._subscriptions)

    def patterns(self) -> List[str]:
        return [subscription.pattern for subscription in self._subscriptions]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"EventBus(subscribers={self.subscriber_count}, emitted={self._seq})"
