"""Simulated clocks.

The cluster simulator accounts time in *simulated seconds* derived from the
cost model rather than wall-clock time, so experiments are deterministic and
run in milliseconds of real time even when they model hours of cluster work.

Two clock flavours are provided:

* :class:`SimulatedClock` — a simple monotonically advancing counter used by a
  single logical timeline (e.g. one partition's storage activity).
* :class:`LamportClock` — a logical clock used to order events across
  CC and NC message exchanges (log records, rebalance phases) without needing
  a global physical time.

Discrete-event facade
---------------------
The same :class:`SimulatedClock` instance is the facade both execution
engines share (see :mod:`repro.sim` and ``docs/CONCURRENCY.md``):

* **Legacy run-to-completion callers** keep calling :meth:`SimulatedClock
  .advance` / :meth:`SimulatedClock.advance_many` exactly as before — one
  actor implicitly holds the whole timeline, and the numeric behaviour is
  bit-identical to every recording made before the scheduler existed.
* **The event scheduler** (:class:`repro.sim.EventScheduler`) treats those
  same calls as *inline work charged by whichever actor currently holds the
  clock* and uses :meth:`SimulatedClock.advance_to` when dispatching a
  parked actor — a no-op when inline work already pushed time past the due
  point, which is precisely how two actors overlap on one timeline.
"""

from __future__ import annotations

from typing import Iterable


class SimulatedClock:
    """A monotonically non-decreasing simulated-time counter (seconds)."""

    def __init__(self, start: float = 0.0) -> None:
        if start < 0:
            raise ValueError("clock cannot start before time zero")
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def advance(self, seconds: float) -> float:
        """Advance the clock by ``seconds`` and return the new time.

        Negative advances are rejected: simulated time never flows backwards.
        """
        if seconds < 0:
            raise ValueError(f"cannot advance clock by negative time {seconds!r}")
        self._now += seconds
        return self._now

    def advance_many(self, durations: "Iterable[float]") -> float:
        """Advance by each duration in order (one validated add per value).

        Bit-identical to calling :meth:`advance` per duration — float
        addition is applied in the same order — without the per-call
        attribute and validation overhead.  Used by the batched op-sample
        sink of the metrics registry.
        """
        now = self._now
        for seconds in durations:
            if seconds < 0:
                raise ValueError(f"cannot advance clock by negative time {seconds!r}")
            now += seconds
        self._now = now
        return now

    def advance_to(self, timestamp: float) -> float:
        """Move the clock forward to ``timestamp`` if it is in the future.

        Used to synchronise a node's local clock with the cluster-wide
        completion time of a barrier (e.g. "all partitions finished loading"),
        and by :class:`repro.sim.EventScheduler` when dispatching a parked
        actor — the "already past it" no-op case is what lets inline op
        latencies overlap a scheduled actor's wait.
        """
        if timestamp > self._now:
            self._now = float(timestamp)
        return self._now

    def reset(self, start: float = 0.0) -> None:
        """Reset the clock; only used by tests and benchmark setup."""
        if start < 0:
            raise ValueError("clock cannot be reset before time zero")
        self._now = float(start)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"SimulatedClock(now={self._now:.3f})"


class LamportClock:
    """A Lamport logical clock for ordering distributed events.

    The CC and each NC own one instance.  ``tick`` is called for local events
    (forcing a log record, finishing a flush); ``observe`` is called when a
    message stamped with the sender's clock arrives.
    """

    def __init__(self) -> None:
        self._time = 0

    @property
    def time(self) -> int:
        return self._time

    def tick(self) -> int:
        """Record a local event and return its timestamp."""
        self._time += 1
        return self._time

    def observe(self, remote_time: int) -> int:
        """Merge a remote timestamp and record the receive event."""
        self._time = max(self._time, int(remote_time)) + 1
        return self._time

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"LamportClock(time={self._time})"
