"""Exception hierarchy shared across the DynaHash reproduction.

Every subsystem raises exceptions derived from :class:`ReproError` so callers
can distinguish library failures from programming errors.  The rebalance
protocol additionally uses :class:`RebalanceAborted` as a control-flow signal
for the abort path of its two-phase commit, mirroring how the paper's
implementation treats an abort as an expected (non-exceptional) outcome that
still needs cleanup.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class ConfigError(ReproError):
    """An invalid configuration value was supplied."""


class StorageError(ReproError):
    """Base class for errors raised by the LSM storage substrate."""


class ComponentStateError(StorageError):
    """A component was used after deactivation or before activation."""


class BucketNotFoundError(StorageError):
    """A key was routed to a bucket that does not exist in the local directory."""


class DirectoryError(ReproError):
    """The extendible-hash directory is in an inconsistent state."""


class ClusterError(ReproError):
    """Base class for cluster-level errors (unknown node, dataset, partition)."""


class UnknownNodeError(ClusterError):
    """An operation referenced a node id not registered with the CC."""


class UnknownDatasetError(ClusterError):
    """An operation referenced a dataset that was never created."""


class DatasetExistsError(ClusterError):
    """Attempted to create a dataset whose name is already taken."""


class RebalanceError(ReproError):
    """Base class for rebalance-protocol errors."""


class RebalanceAborted(RebalanceError):
    """The rebalance operation was aborted (node failure, injected fault, vote no).

    Carrying the reason makes the abort path observable in tests and
    benchmarks; the dataset is guaranteed to be left in its pre-rebalance
    state when this is raised by
    :meth:`repro.rebalance.operation.RebalanceOperation.run`.
    """

    def __init__(self, reason: str) -> None:
        super().__init__(reason)
        self.reason = reason


class RebalanceInProgressError(RebalanceError):
    """A second rebalance was requested while one is already running."""


class QueryError(ReproError):
    """Base class for query-engine errors (bad plan, unknown column)."""


class UnknownColumnError(QueryError):
    """A plan referenced a column that is not present in the input schema."""


class FaultInjected(ReproError):
    """Raised by the fault-injection hooks to simulate a node crash.

    The rebalance recovery tests inject this at specific protocol points
    (before/after prepare, before/after commit) to exercise the six failure
    cases of Section V-D.
    """

    def __init__(self, site: str) -> None:
        super().__init__(f"injected fault at {site}")
        self.site = site
