"""Generic text-table rendering shared across layers.

:func:`format_table` is used by the benchmark harness (figure tables), the
metrics registry (latency reports), and the examples; it lives in
:mod:`repro.common` so low layers like :mod:`repro.metrics` can render
reports without depending on the benchmark harness above them.  The
bench-specific shapes (series/per-query/markdown tables) stay in
:mod:`repro.bench.reporting`, which re-exports this function.
"""

from __future__ import annotations

from typing import Sequence


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Render an aligned text table."""
    str_rows = [[_cell(value) for value in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for index, value in enumerate(row):
            widths[index] = max(widths[index], len(value))
    lines = [
        "  ".join(header.ljust(widths[index]) for index, header in enumerate(headers)),
        "  ".join("-" * widths[index] for index in range(len(headers))),
    ]
    for row in str_rows:
        lines.append("  ".join(value.ljust(widths[index]) for index, value in enumerate(row)))
    return "\n".join(lines)


def _cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)
