"""Deterministic hash functions for partitioning.

Python's builtin ``hash`` is randomised per process for strings, which would
make partition assignment non-deterministic across runs; partitioning must be
a pure function of the key (Section II-A: "A partitioning function
deterministically assigns each record to a node").  We therefore use our own
64-bit mixers.

Two functions are exposed:

* :func:`hash64` — a splitmix64-style avalanche mix for integer keys.
* :func:`hash_key` — hashes arbitrary primary keys (ints, strings, tuples)
  down to a 64-bit value, used by every partitioner in :mod:`repro.hashing`.
"""

from __future__ import annotations

from typing import Any

_MASK64 = (1 << 64) - 1


def hash64(value: int) -> int:
    """Mix a 64-bit integer with the splitmix64 finalizer.

    The finalizer has full avalanche behaviour: flipping any input bit flips
    each output bit with probability ~0.5, which is what makes "take the low
    ``d`` bits" a good bucket function for extendible hashing.
    """
    x = value & _MASK64
    x = (x + 0x9E3779B97F4A7C15) & _MASK64
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _MASK64
    x = x ^ (x >> 31)
    return x & _MASK64


def _fnv1a_bytes(data: bytes) -> int:
    """64-bit FNV-1a over a byte string (used for string/tuple keys)."""
    h = 0xCBF29CE484222325
    for byte in data:
        h ^= byte
        h = (h * 0x100000001B3) & _MASK64
    return h


def hash_key(key: Any) -> int:
    """Hash an arbitrary primary key to a 64-bit value.

    Supported key types are the ones the TPC-H substrate and examples use:
    integers, strings, bytes, floats, and tuples of those (composite keys).
    """
    if isinstance(key, bool):
        # bool is an int subclass; hash it as its integer value explicitly so
        # True/1 collide intentionally rather than by accident.
        return hash64(int(key))
    if isinstance(key, int):
        return hash64(key)
    if isinstance(key, float):
        # Float hashing is an arithmetic reduction mod 2**61-1, NOT salted by
        # PYTHONHASHSEED (only str/bytes are), so it is process-stable.
        return hash64(hash(key) & _MASK64)  # reprolint: allow[det-builtin-hash] -- hash(float) is unsalted and cross-process stable
    if isinstance(key, str):
        return _fnv1a_bytes(key.encode("utf-8"))
    if isinstance(key, bytes):
        return _fnv1a_bytes(key)
    if isinstance(key, tuple):
        h = 0x345678
        for part in key:
            h = (hash64(h) ^ hash_key(part)) & _MASK64
        return hash64(h)
    raise TypeError(f"unsupported partitioning key type: {type(key).__name__}")


def low_bits(hash_value: int, depth: int) -> int:
    """Return the ``depth`` low-order bits of ``hash_value``.

    Extendible hashing (Section III) defines a bucket by the ``d`` low-order
    bits of the hash; ``depth`` of zero means "the single bucket that covers
    the whole hash space".
    """
    if depth < 0:
        raise ValueError("depth must be non-negative")
    if depth == 0:
        return 0
    return hash_value & ((1 << depth) - 1)


def prefix_matches(hash_value: int, prefix: int, depth: int) -> bool:
    """True if ``hash_value`` belongs to the bucket ``(prefix, depth)``."""
    return low_bits(hash_value, depth) == low_bits(prefix, depth)
