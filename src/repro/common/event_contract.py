"""The machine-readable event-bus contract.

Every event the system emits is declared here: its dotted name, the payload
keys emitters must provide (``required``), the keys they may provide
(``optional``), and the one-line description the architecture guide renders.
The contract is the single source of truth three consumers share:

* ``repro.api.events.EVENT_NAMES`` is derived from it (the public tuple
  client code and tests assert coverage against),
* the **reprolint** event rules (:mod:`repro.analysis`) statically cross-check
  every ``emit("literal", ...)`` call site and every ``on("pattern")``
  subscription in the tree against it,
* the event-bus section of ``docs/ARCHITECTURE.md`` is *generated* from it
  (``scripts/gen_event_docs.py``, with a ``--check`` sync gate in CI), so the
  prose can never drift from the code again.

Adding an event therefore means adding an :class:`EventSpec` to the right
family below, regenerating the docs, and letting the linter hold every
emitter to the declared payload.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fnmatch import fnmatchcase
from typing import Dict, FrozenSet, Tuple

__all__ = [
    "EVENT_CONTRACT",
    "EVENT_FAMILIES",
    "EventFamily",
    "EventSpec",
    "allowed_keys",
    "declared_events",
    "is_declared",
    "patterns_matching",
    "render_contract_markdown",
    "required_keys",
]


@dataclass(frozen=True)
class EventSpec:
    """One declared event: name, payload schema, and doc line."""

    name: str
    #: Keys every emission must carry.
    required: Tuple[str, ...]
    #: Keys an emission may carry (documented extras).
    optional: Tuple[str, ...] = ()
    #: One-line "when/what" description rendered into the architecture guide.
    description: str = ""

    def payload_keys(self) -> FrozenSet[str]:
        return frozenset(self.required) | frozenset(self.optional)


@dataclass(frozen=True)
class EventFamily:
    """A dotted-prefix family of events with shared docs prose."""

    key: str
    title: str
    #: Markdown paragraph(s) introducing the family in the architecture guide.
    intro: str
    events: Tuple[EventSpec, ...] = field(default_factory=tuple)


EVENT_FAMILIES: Tuple[EventFamily, ...] = (
    EventFamily(
        key="op",
        title="`op.*` — instrumented operations",
        intro=(
            "Emitted by the `Dataset` verbs (and `Database.execute*` for "
            "`op.query`); consumed by the metrics registry (histogram sample "
            "+ counters) and the autopilot (evaluation pacing). Every sample "
            "carries `latency_seconds` (the operation's simulated service "
            "time) and `records` (records touched — the batch size for "
            "`insert`, the rows returned for `scan`). The batched driver "
            "pipeline emits one `op.batch` per same-verb run instead of N "
            "single-op events; the registry's batch sink produces "
            "bit-identical state to the per-sample path."
        ),
        events=(
            EventSpec(
                "op.read",
                required=("dataset", "latency_seconds", "records"),
                optional=("found",),
                description="an instrumented `Dataset.get` completed; `found` says whether the key existed",
            ),
            EventSpec(
                "op.insert",
                required=("dataset", "latency_seconds", "records"),
                description="an instrumented `Dataset.insert` batch completed",
            ),
            EventSpec(
                "op.update",
                required=("dataset", "latency_seconds", "records"),
                optional=("concurrent",),
                description=(
                    "a `Dataset.upsert` completed; `concurrent=True` marks a "
                    "write replicated mid-rebalance (the Figure 7c path)"
                ),
            ),
            EventSpec(
                "op.delete",
                required=("dataset", "latency_seconds", "records"),
                optional=("deleted",),
                description="an instrumented `Dataset.delete` completed; `deleted` counts the keys that existed",
            ),
            EventSpec(
                "op.scan",
                required=("dataset", "latency_seconds", "records"),
                description="an instrumented `Dataset.scan` was fully consumed; `records` is the rows returned",
            ),
            EventSpec(
                "op.query",
                required=("query", "latency_seconds", "records"),
                description="a query (plan or spec mode) completed; `query` names it",
            ),
            EventSpec(
                "op.batch",
                required=("op", "dataset", "latencies", "records_per_op", "count"),
                description=(
                    "one batched run of same-verb samples from the driver "
                    "pipeline; `latencies` is the per-op list"
                ),
            ),
        ),
    ),
    EventFamily(
        key="rebalance",
        title="`rebalance.*` — the resize protocol",
        intro=(
            "The paper's Section V protocol narrates itself on the bus: the "
            "cluster-level bracket (`rebalance.start` / `rebalance.complete`) "
            "flips the metrics phase between `steady` and `rebalance`, and "
            "every per-dataset operation reports its phases, commit point, "
            "and outcome. `rebalance.phase` is the hook the workload driver "
            "uses to run reads genuinely mid-rebalance."
        ),
        events=(
            EventSpec(
                "rebalance.start",
                required=("strategy", "old_nodes", "target_nodes"),
                description="`rebalance_to` began; flips the metrics phase to `rebalance`",
            ),
            EventSpec(
                "rebalance.dataset.start",
                required=("dataset", "rebalance_id", "strategy"),
                description="one dataset's protocol operation began",
            ),
            EventSpec(
                "rebalance.bucket_move",
                required=("dataset", "rebalance_id", "bucket", "source", "destination"),
                optional=("records", "payload_bytes"),
                description=(
                    "one bucket's snapshot was shipped during data movement; "
                    "`source`/`destination` are partition ids (emitted only "
                    "when someone subscribes — the tracer's per-move feed)"
                ),
            ),
            EventSpec(
                "rebalance.phase",
                required=("dataset", "rebalance_id", "phase", "seconds"),
                description=(
                    "a protocol phase (`initialization` | `data_movement` | "
                    "`finalization`) finished"
                ),
            ),
            EventSpec(
                "rebalance.commit",
                required=("dataset", "rebalance_id", "buckets_moved"),
                description="the COMMIT record was forced (the point of no return)",
            ),
            EventSpec(
                "rebalance.abort",
                required=("dataset", "rebalance_id", "reason"),
                description="the operation aborted",
            ),
            EventSpec(
                "rebalance.dataset.complete",
                required=("dataset", "rebalance_id", "committed", "report"),
                description="one dataset's operation finished; `report` is its `RebalanceReport`",
            ),
            EventSpec(
                "rebalance.complete",
                required=("strategy", "old_nodes", "new_nodes", "committed", "report"),
                description=(
                    "the whole resize finished (`report` is the "
                    "`ClusterRebalanceReport`); flips the phase back to `steady`"
                ),
            ),
            EventSpec(
                "rebalance.error",
                required=("target_nodes", "error"),
                description="the resize raised (e.g. an injected fault)",
            ),
            EventSpec(
                "recovery.complete",
                required=("outcomes",),
                description="`db.recover()` finished; `outcomes` lists `(rebalance_id, dataset, action)`",
            ),
        ),
    ),
    EventFamily(
        key="autopilot",
        title="`autopilot.*` — the control loop",
        intro=(
            "The autopilot engine narrates its observe → decide → act loop. "
            "The metrics registry counts every `autopilot.*` event under its "
            "full name, so control-plane activity appears in "
            "`MetricsSnapshot.counters` like any other telemetry (that is "
            "what the `min_autopilot_rebalances` scenario check reads)."
        ),
        events=(
            EventSpec(
                "autopilot.start",
                required=("policy", "check_every_ops", "cooldown_seconds", "hysteresis", "dry_run"),
                description="engine attached to the op stream",
            ),
            EventSpec(
                "autopilot.decision",
                required=("policy", "action", "target_nodes", "reason", "outcome"),
                description="a policy decided to act (whatever the outcome)",
            ),
            EventSpec(
                "autopilot.skip",
                required=("reason", "action", "target_nodes"),
                description=(
                    "a guardrail (`cooldown` | `hysteresis` | `max_rebalances`) "
                    "vetoed the decision"
                ),
            ),
            EventSpec(
                "autopilot.dry_run",
                required=("action", "target_nodes", "reason"),
                description="dry-run mode: planned, not executed",
            ),
            EventSpec(
                "autopilot.rebalance.start",
                required=("action", "target_nodes", "reason"),
                description="the engine began executing a rebalance",
            ),
            EventSpec(
                "autopilot.rebalance.complete",
                required=("action", "target_nodes", "new_nodes", "committed", "report"),
                description="the policy-triggered rebalance finished",
            ),
            EventSpec(
                "autopilot.stop",
                required=("decisions", "rebalances"),
                description="engine detached (session close or replacement)",
            ),
        ),
    ),
    EventFamily(
        key="trace",
        title="`trace.*` — tracing hook points",
        intro=(
            "Emitted only when a tracing session (`repro.trace`) is attached: "
            "every emitter probes `has_subscribers` first, so an untraced run "
            "pays one cached dict hit per hook at most. The workload driver "
            "brackets each phase, the autopilot reports every evaluation "
            "(including the ones that decide to do nothing — "
            "`autopilot.decision` only fires on action), and the "
            "`TimelineRecorder` publishes each gauge sample it takes so tests "
            "and dashboards can watch the timeline live."
        ),
        events=(
            EventSpec(
                "trace.phase.start",
                required=("phase",),
                optional=("ops",),
                description="the workload driver entered a schedule phase",
            ),
            EventSpec(
                "trace.phase.end",
                required=("phase",),
                optional=("ops", "seconds"),
                description="the phase finished; `seconds` is its simulated duration",
            ),
            EventSpec(
                "trace.autopilot.evaluate",
                required=("policy", "action"),
                optional=("reason",),
                description=(
                    "one autopilot evaluation ran; `action` is the raw policy "
                    "verdict before guardrails (including `none`)"
                ),
            ),
            EventSpec(
                "trace.sample",
                required=("simulated_seconds", "values"),
                description=(
                    "the `TimelineRecorder` took a gauge sample; `values` maps "
                    "series name to the sampled value"
                ),
            ),
        ),
    ),
    EventFamily(
        key="chaos",
        title="`chaos.*` / `retry.*` — fault injection and the client retry path",
        intro=(
            "Emitted only when a scenario declares a `[chaos]` section "
            "(`repro.chaos`): every fault the engine injects narrates itself "
            "on the bus, and the client retry path reports each routing miss "
            "and backoff it absorbs. All chaos draws come from the dedicated "
            "`chaos:<seed>` RNG stream, so these events replay bit for bit. "
            "The metrics registry counts each `chaos.*` event under its full "
            "name and each `retry.*` event both under its full name and "
            "per-phase (`retry.routing_miss.rebalance`), which is what the "
            "`max_routing_miss_rate` check and the compare headline metrics "
            "read."
        ),
        events=(
            EventSpec(
                "chaos.straggler",
                required=("node", "multiplier", "start", "duration"),
                description=(
                    "a straggler window first slowed the named node; its "
                    "latency share scales by `multiplier` for the window"
                ),
            ),
            EventSpec(
                "chaos.partition",
                required=("start", "duration"),
                optional=("datasets",),
                description=(
                    "a CC↔NC partition window first froze the client's "
                    "directory view; routing may land on moved buckets"
                ),
            ),
            EventSpec(
                "chaos.crash",
                required=("site", "at"),
                description=(
                    "a scheduled crash armed the named `FAULT_SITES` site for "
                    "the next explicit rebalance"
                ),
            ),
            EventSpec(
                "chaos.backpressure",
                required=("factor", "start", "duration"),
                description="a backpressure window first stretched feed ingest by `factor`",
            ),
            EventSpec(
                "chaos.burst",
                required=("factor", "start", "duration"),
                description="a burst window first stretched client op latency by `factor`",
            ),
            EventSpec(
                "retry.routing_miss",
                required=("dataset", "stale_partition", "live_partition"),
                description=(
                    "a stale-directory read landed on the wrong partition; "
                    "the client refreshed its view and re-routed"
                ),
            ),
            EventSpec(
                "retry.backoff",
                required=("dataset", "attempt", "delay_seconds"),
                description=(
                    "a simulated RPC timeout triggered one capped-exponential "
                    "backoff attempt"
                ),
            ),
        ),
    ),
    EventFamily(
        key="lifecycle",
        title="Ingest, datasets, topology, session",
        intro=(
            "Lifecycle events from the controller, the data feeds, and the "
            "`Database` session itself."
        ),
        events=(
            EventSpec(
                "ingest.start",
                required=("dataset",),
                description="a data feed started ingesting",
            ),
            EventSpec(
                "ingest.complete",
                required=("dataset", "records", "splits", "report"),
                description="the feed finished; `report` is the `IngestReport`",
            ),
            EventSpec(
                "dataset.create",
                required=("dataset", "routing", "partitions"),
                description="a dataset was created (`routing` is `directory` | `modulo`)",
            ),
            EventSpec(
                "dataset.delete",
                required=("dataset", "keys", "deleted"),
                description="a `Dataset.delete` removed keys (the dataset-level record, beside `op.delete`)",
            ),
            EventSpec(
                "dataset.drop",
                required=("dataset",),
                description="a dataset was dropped",
            ),
            EventSpec(
                "node.provision",
                required=("node", "nodes"),
                description="a node was added (before data moved onto it); `nodes` is the new cluster size",
            ),
            EventSpec(
                "node.decommission",
                required=("node", "nodes"),
                description="a node was removed (after data moved away)",
            ),
            EventSpec(
                "database.close",
                required=("datasets",),
                description="the `Database` session was closed",
            ),
        ),
    ),
)

#: Flattened contract: event name -> spec, in family order.
EVENT_CONTRACT: Dict[str, EventSpec] = {
    spec.name: spec for family in EVENT_FAMILIES for spec in family.events
}


def declared_events() -> Tuple[str, ...]:
    """Every declared event name, in contract (family) order."""
    return tuple(EVENT_CONTRACT)


def is_declared(name: str) -> bool:
    return name in EVENT_CONTRACT


def required_keys(name: str) -> FrozenSet[str]:
    return frozenset(EVENT_CONTRACT[name].required)


def allowed_keys(name: str) -> FrozenSet[str]:
    return EVENT_CONTRACT[name].payload_keys()


def patterns_matching(pattern: str) -> Tuple[str, ...]:
    """Declared event names an ``fnmatch`` subscription pattern would reach."""
    return tuple(name for name in EVENT_CONTRACT if fnmatchcase(name, pattern))


# --------------------------------------------------------------------- docs


def _code(key: str) -> str:
    return f"`{key}`"


def render_contract_markdown() -> str:
    """The generated event-bus section body for ``docs/ARCHITECTURE.md``.

    ``scripts/gen_event_docs.py`` splices this between the sync markers; the
    reprolint docs gate (`--check`) fails CI when the file drifts from the
    contract.
    """
    lines = []
    for family in EVENT_FAMILIES:
        lines.append(f"### {family.title}")
        lines.append("")
        lines.append(family.intro)
        lines.append("")
        lines.append("| event | required payload | optional | when / what |")
        lines.append("|---|---|---|---|")
        for spec in family.events:
            required = ", ".join(_code(k) for k in spec.required)
            optional = ", ".join(_code(k) for k in spec.optional) or "—"
            lines.append(
                f"| `{spec.name}` | {required} | {optional} | {spec.description} |"
            )
        lines.append("")
    return "\n".join(lines).rstrip() + "\n"
