"""Byte-size and rate units used throughout the simulator.

The paper talks in GB (10 GB max bucket size, 100 GB TPC-H data per node,
2 GB memory component budget ...).  The simulator accounts sizes in plain
bytes; these helpers keep configuration readable and conversions explicit.
"""

from __future__ import annotations

KIB = 1024
MIB = 1024 * KIB
GIB = 1024 * MIB

KB = 1000
MB = 1000 * KB
GB = 1000 * MB


def kib(n: float) -> int:
    """Return ``n`` kibibytes expressed in bytes."""
    return int(n * KIB)


def mib(n: float) -> int:
    """Return ``n`` mebibytes expressed in bytes."""
    return int(n * MIB)


def gib(n: float) -> int:
    """Return ``n`` gibibytes expressed in bytes."""
    return int(n * GIB)


def fmt_bytes(n: float) -> str:
    """Render a byte count with a binary-unit suffix for logs and reports.

    >>> fmt_bytes(1536)
    '1.50 KiB'
    >>> fmt_bytes(10 * GIB)
    '10.00 GiB'
    """
    value = float(n)
    for suffix in ("B", "KiB", "MiB", "GiB", "TiB"):
        if abs(value) < 1024.0 or suffix == "TiB":
            if suffix == "B":
                return f"{int(value)} B"
            return f"{value:.2f} {suffix}"
        value /= 1024.0
    raise AssertionError("unreachable")


def fmt_duration(seconds: float) -> str:
    """Render a simulated duration as a human-readable string.

    >>> fmt_duration(42.5)
    '42.5 s'
    >>> fmt_duration(3900)
    '65.0 min'
    """
    if seconds < 120:
        return f"{seconds:.1f} s"
    minutes = seconds / 60.0
    if minutes < 600:
        return f"{minutes:.1f} min"
    return f"{minutes / 60.0:.1f} h"
