"""Configuration objects for the storage engine and the cluster simulator.

The defaults mirror the experimental setup of Section VI-A of the paper:

* 4 storage partitions per Node Controller,
* a size-tiered merge policy with size ratio 1.2,
* a 2 GB memory-component budget per node (so 512 MB per partition),
* 16 KB pages,
* DynaHash's 10 GB maximum bucket size and StaticHash's 256 buckets.

All values can be overridden for tests and for the scaled-down benchmark runs
(the simulator works at any scale because time is derived from a cost model,
not measured).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from .errors import ConfigError
from .units import GIB, KIB, MIB


@dataclass(frozen=True)
class LSMConfig:
    """Configuration of a single LSM-tree (one index of one partition)."""

    #: Maximum size in bytes of the in-memory component before a flush.
    memory_component_bytes: int = 512 * MIB
    #: Size-tiered merge policy ratio (Section VI-A uses 1.2).
    merge_size_ratio: float = 1.2
    #: Minimum number of components participating in one merge.
    merge_min_components: int = 2
    #: Maximum number of components merged at once (0 = unlimited).
    merge_max_components: int = 0
    #: Page size used for I/O accounting.
    page_bytes: int = 16 * KIB
    #: Bits per key for disk-component Bloom filters (0 disables them).
    bloom_bits_per_key: int = 10
    #: Number of hash functions for Bloom filters.
    bloom_num_hashes: int = 7

    def __post_init__(self) -> None:
        if self.memory_component_bytes <= 0:
            raise ConfigError("memory_component_bytes must be positive")
        if self.merge_size_ratio <= 0:
            raise ConfigError("merge_size_ratio must be positive")
        if self.merge_min_components < 2:
            raise ConfigError("merge_min_components must be at least 2")
        if self.page_bytes <= 0:
            raise ConfigError("page_bytes must be positive")
        if self.bloom_bits_per_key < 0 or self.bloom_num_hashes < 0:
            raise ConfigError("bloom filter parameters must be non-negative")

    def scaled(self, factor: float) -> "LSMConfig":
        """Return a copy with the memory budget scaled by ``factor``.

        Benchmarks run at reduced data scale; scaling the memory component
        budget by the same factor preserves the flush/merge cadence of the
        full-size system.
        """
        if factor <= 0:
            raise ConfigError("scale factor must be positive")
        return replace(
            self,
            memory_component_bytes=max(1, int(self.memory_component_bytes * factor)),
        )


@dataclass(frozen=True)
class BucketingConfig:
    """Configuration of the dynamic-bucketing layer (Section III / IV)."""

    #: Maximum bucket size before a split (DynaHash uses 10 GB in the paper).
    max_bucket_bytes: int = 10 * GIB
    #: Initial number of buckets created per partition when a dataset is made.
    initial_buckets_per_partition: int = 1
    #: If True, buckets never split (StaticHash behaviour).
    static: bool = False
    #: For StaticHash: total number of buckets across the dataset (paper: 256).
    static_total_buckets: int = 256

    def __post_init__(self) -> None:
        if self.max_bucket_bytes <= 0:
            raise ConfigError("max_bucket_bytes must be positive")
        if self.initial_buckets_per_partition < 1:
            raise ConfigError("initial_buckets_per_partition must be at least 1")
        if self.static_total_buckets < 1:
            raise ConfigError("static_total_buckets must be at least 1")

    def scaled(self, factor: float) -> "BucketingConfig":
        """Return a copy with the max bucket size scaled by ``factor``."""
        if factor <= 0:
            raise ConfigError("scale factor must be positive")
        return replace(self, max_bucket_bytes=max(1, int(self.max_bucket_bytes * factor)))


@dataclass(frozen=True)
class CostModelConfig:
    """Parameters converting work (bytes, records, messages) to simulated seconds.

    The absolute values are calibrated loosely to the paper's hardware
    (i3.xlarge: NVMe SSD ~500 MB/s sequential, 10 Gbit network shared by 4
    partitions, record parsing being CPU-heavy).  Only the *ratios* matter for
    reproducing the figures' shapes.
    """

    #: Sequential disk read throughput in bytes/second per partition.
    disk_read_bytes_per_sec: float = 450 * MIB
    #: Sequential disk write throughput in bytes/second per partition.
    disk_write_bytes_per_sec: float = 350 * MIB
    #: Network throughput in bytes/second per node (shared by its partitions).
    network_bytes_per_sec: float = 280 * MIB
    #: CPU cost of parsing one ingested record, in seconds (paper: ingestion is
    #: CPU-heavy due to record parsing).
    cpu_parse_record_sec: float = 6.0e-6
    #: CPU cost of comparing/merging one record during LSM merges and sorts.
    cpu_compare_record_sec: float = 4.0e-7
    #: CPU cost applied per record by each query operator that touches it.
    cpu_operator_record_sec: float = 2.5e-7
    #: Fixed latency of one CC<->NC control message, in seconds.
    rpc_latency_sec: float = 0.002
    #: Extra per-component seek/open overhead charged per disk component read.
    component_open_sec: float = 0.001

    def __post_init__(self) -> None:
        for name in (
            "disk_read_bytes_per_sec",
            "disk_write_bytes_per_sec",
            "network_bytes_per_sec",
        ):
            if getattr(self, name) <= 0:
                raise ConfigError(f"{name} must be positive")
        for name in (
            "cpu_parse_record_sec",
            "cpu_compare_record_sec",
            "cpu_operator_record_sec",
            "rpc_latency_sec",
            "component_open_sec",
        ):
            if getattr(self, name) < 0:
                raise ConfigError(f"{name} must be non-negative")


@dataclass(frozen=True)
class ClusterConfig:
    """Top-level configuration for a simulated AsterixDB-style cluster."""

    #: Number of Node Controllers.
    num_nodes: int = 4
    #: Storage partitions per NC (paper: 4).
    partitions_per_node: int = 4
    #: LSM configuration shared by all indexes.
    lsm: LSMConfig = field(default_factory=LSMConfig)
    #: Bucketing configuration for primary indexes.
    bucketing: BucketingConfig = field(default_factory=BucketingConfig)
    #: Cost model converting work into simulated time.
    cost: CostModelConfig = field(default_factory=CostModelConfig)
    #: Seed for all pseudo-random choices (data generation, workload).
    seed: int = 2022
    #: Optional rebalancing-strategy name resolved through the strategy
    #: registry (e.g. ``"dynahash"``, ``"static"``, ``"consistent"``,
    #: ``"hashing"``).  ``None`` keeps the legacy behaviour of passing a
    #: strategy object to the cluster/Database directly.
    strategy: Optional[str] = None

    def __post_init__(self) -> None:
        if self.num_nodes < 1:
            raise ConfigError("num_nodes must be at least 1")
        if self.partitions_per_node < 1:
            raise ConfigError("partitions_per_node must be at least 1")

    @property
    def total_partitions(self) -> int:
        """Total number of storage partitions in the cluster."""
        return self.num_nodes * self.partitions_per_node

    def with_nodes(self, num_nodes: int) -> "ClusterConfig":
        """Return a copy of this configuration with a different node count."""
        return replace(self, num_nodes=num_nodes)

    def scaled(self, factor: float, seed: Optional[int] = None) -> "ClusterConfig":
        """Scale memory/bucket thresholds for reduced-scale benchmark runs."""
        return replace(
            self,
            lsm=self.lsm.scaled(factor),
            bucketing=self.bucketing.scaled(factor),
            seed=self.seed if seed is None else seed,
        )
