"""Cluster observations: the frozen input every autopilot policy decides on.

A :class:`ClusterObservation` is captured from a live
:class:`~repro.api.database.Database` session right before each policy
evaluation.  It is deliberately a *value* — frozen, hashable fields only — so
two runs with the same seed capture identical observation sequences and
therefore make identical decisions (the autopilot determinism contract), and
so tests can compare observations directly.

Everything here is derived from state that is itself deterministic: the
metrics registry's simulated clock and counters, and the cluster's per-node
storage accounting.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, TYPE_CHECKING, Tuple

from ..metrics import PHASE_REBALANCE, PHASE_STEADY

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..api.database import Database
    from ..metrics.histogram import LatencyHistogram


def balance_ratio(values: "Sequence[int]") -> float:
    """max/mean over ``values`` (1.0 = perfectly balanced or no data).

    The one definition of "balance" shared by observations and what-if
    projections, so policies always compare like with like.
    """
    if not values:
        return 1.0
    mean = sum(values) / len(values)
    if mean <= 0:
        return 1.0
    return max(values) / mean


@dataclass(frozen=True)
class ClusterObservation:
    """What the autopilot sees: load, balance, capacity, and tail latency."""

    #: The metrics clock at capture time (simulated seconds).
    simulated_seconds: float
    num_nodes: int
    total_partitions: int
    #: ``(node_id, bytes)`` pairs, sorted by node id.
    storage_per_node: Tuple[Tuple[str, int], ...]
    total_bytes: int
    max_node_bytes: int
    #: Per-node byte skew, max/mean (1.0 = perfectly balanced).
    node_balance_ratio: float
    #: Per-partition byte skew across all datasets (hotspot partitions push
    #: this up well before whole nodes look imbalanced).
    partition_balance_ratio: float
    max_partition_bytes: int
    total_records: int
    #: Total operations the metrics registry has counted so far.
    ops_total: int
    #: Whether a rebalance is currently in flight (registry phase).
    in_rebalance: bool
    rebalances_started: int
    rebalances_completed: int
    #: Cumulative p99s in seconds; 0.0 when no samples exist for the phase.
    steady_write_p99: float
    steady_read_p99: float
    rebalance_write_p99: float
    dataset_names: Tuple[str, ...]
    #: Cumulative per-bucket op counts, ``(dataset, bucket, count)`` sorted
    #: by (dataset, bucket).  Populated only while a tracing session's
    #: `TimelineRecorder` has its heat tracker installed on the cluster
    #: (empty otherwise), so policies consuming heat must tolerate absence.
    bucket_read_heat: Tuple[Tuple[str, str, int], ...] = ()
    bucket_write_heat: Tuple[Tuple[str, str, int], ...] = ()
    #: ``(node_id, multiplier)`` pairs for nodes currently inside an active
    #: chaos straggler window.  Populated only while a chaos engine is
    #: installed on the cluster (empty otherwise) — like heat, policies that
    #: consume it must tolerate absence.
    straggler_nodes: Tuple[Tuple[str, float], ...] = ()

    @classmethod
    def capture(cls, db: "Database") -> "ClusterObservation":
        """Snapshot the session's cluster and telemetry state."""
        cluster = db.cluster
        metrics = db.metrics
        storage = tuple(sorted(cluster.storage_per_node().items()))
        node_bytes = tuple(size for _, size in storage)
        partition_bytes: dict = {}
        total_records = 0
        for name in cluster.dataset_names():
            runtime = cluster.dataset(name)
            total_records += runtime.record_count()
            for pid, partition in runtime.partitions.items():
                partition_bytes[pid] = partition_bytes.get(pid, 0) + partition.size_bytes
        per_partition = tuple(partition_bytes[pid] for pid in sorted(partition_bytes))
        heat = cluster.heat
        return cls(
            simulated_seconds=metrics.clock.now,
            num_nodes=cluster.num_nodes,
            total_partitions=cluster.total_partitions,
            storage_per_node=storage,
            total_bytes=sum(node_bytes),
            max_node_bytes=max(node_bytes) if node_bytes else 0,
            node_balance_ratio=balance_ratio(node_bytes),
            partition_balance_ratio=balance_ratio(per_partition),
            max_partition_bytes=max(per_partition) if per_partition else 0,
            total_records=total_records,
            ops_total=int(metrics.counter_value("ops.total")),
            in_rebalance=metrics.in_rebalance,
            rebalances_started=int(metrics.counter_value("rebalance.started")),
            rebalances_completed=int(metrics.counter_value("rebalance.completed")),
            steady_write_p99=_p99(metrics.write_latency(PHASE_STEADY)),
            steady_read_p99=_p99(metrics.latency("read", PHASE_STEADY)),
            rebalance_write_p99=_p99(metrics.write_latency(PHASE_REBALANCE)),
            dataset_names=tuple(cluster.dataset_names()),
            bucket_read_heat=heat.read_heat() if heat is not None else (),
            bucket_write_heat=heat.write_heat() if heat is not None else (),
            straggler_nodes=(
                cluster.chaos.active_stragglers() if cluster.chaos is not None else ()
            ),
        )

    # ------------------------------------------------------------ conveniences

    def mean_node_bytes(self) -> float:
        return self.total_bytes / self.num_nodes if self.num_nodes else 0.0

    def utilization(self, node_capacity_bytes: int) -> float:
        """Peak node utilization against a per-node capacity budget."""
        if node_capacity_bytes <= 0:
            raise ValueError("node_capacity_bytes must be positive")
        return self.max_node_bytes / node_capacity_bytes

    def mean_utilization(self, node_capacity_bytes: int) -> float:
        if node_capacity_bytes <= 0:
            raise ValueError("node_capacity_bytes must be positive")
        return self.mean_node_bytes() / node_capacity_bytes

    def max_bucket_heat(self) -> int:
        """The hottest single bucket's combined read+write op count.

        Combines both heat tables per (dataset, bucket); 0 when no heat
        tracker is installed (untraced sessions), so threshold policies can
        use heat as a strictly additive trigger.
        """
        combined: dict = {}
        for table in (self.bucket_read_heat, self.bucket_write_heat):
            for dataset, bucket, count in table:
                combined[(dataset, bucket)] = combined.get((dataset, bucket), 0) + count
        return max(combined.values(), default=0)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"ClusterObservation(t={self.simulated_seconds:.3f}s, "
            f"nodes={self.num_nodes}, bytes={self.total_bytes}, "
            f"balance={self.node_balance_ratio:.2f})"
        )


def _p99(histogram: "LatencyHistogram") -> float:
    return histogram.percentile(0.99) if histogram.count else 0.0
