"""The autopilot control plane: metrics-driven automatic rebalancing.

The paper's core claim is that dynamic hashing makes rebalancing cheap enough
to do *often*; this package closes the loop from observed load to rebalance
decisions the way production shared-nothing stores do.  Three layers:

* :class:`ClusterObservation` — a frozen snapshot of what the cluster looks
  like right now, assembled from the session's
  :class:`~repro.metrics.MetricsRegistry` and the cluster state;
* :class:`AutopilotPolicy` implementations (string-keyed registry mirroring
  the strategy registry) that turn an observation into a
  :class:`PolicyDecision`, optionally simulating candidate plans through the
  :class:`WhatIfPlanner` and the cluster cost model;
* the :class:`Autopilot` engine — production guardrails (cooldown windows,
  hysteresis, max one rebalance in flight, dry-run mode) around executing the
  decisions through :meth:`repro.api.Database.rebalance`, emitting
  ``autopilot.*`` lifecycle events onto the session bus so metrics and client
  callbacks observe every decision like any other cluster event.

Client code reaches it through ``db.autopilot(policy="cost_aware", ...)``.
"""

from .autopilot import Autopilot, AutopilotDecision
from .observation import ClusterObservation
from .planner import PlanProjection, WhatIfPlanner
from .policy import (
    ACTION_ADD,
    ACTION_NONE,
    ACTION_REMOVE,
    ACTION_RETARGET,
    AutopilotPolicy,
    CostAwarePolicy,
    PolicyDecision,
    ScheduledPolicy,
    ThresholdPolicy,
    available_policies,
    policy_by_name,
    register_policy,
    resolve_policy,
)

__all__ = [
    "ACTION_ADD",
    "ACTION_NONE",
    "ACTION_REMOVE",
    "ACTION_RETARGET",
    "Autopilot",
    "AutopilotDecision",
    "AutopilotPolicy",
    "ClusterObservation",
    "CostAwarePolicy",
    "PlanProjection",
    "PolicyDecision",
    "ScheduledPolicy",
    "ThresholdPolicy",
    "WhatIfPlanner",
    "available_policies",
    "policy_by_name",
    "register_policy",
    "resolve_policy",
]
