"""Autopilot policies: turning observations into rebalance decisions.

A policy is anything with ``decide(observation, planner) -> PolicyDecision``
and a ``name``.  Three built-ins cover the production archetypes:

* :class:`ThresholdPolicy` — classic trigger rules: per-node byte skew,
  hotspot partitions, capacity pressure against a per-node budget, and p99
  write-latency regression against the first steady baseline it observes.
* :class:`CostAwarePolicy` — simulates candidate plans (re-target, add node,
  remove node) through the :class:`~repro.control.planner.WhatIfPlanner` /
  cluster cost model and picks the cheapest plan whose projected post-move
  balance clears a bar.
* :class:`ScheduledPolicy` — cron-like maintenance driven by the *simulated*
  clock: fire a fixed action every N simulated seconds.

Policies are registered in a string-keyed registry mirroring the PR 1
strategy registry, so client code writes ``db.autopilot(policy="cost_aware")``
and plugs in custom policies with :func:`register_policy`.

Policies may be stateful (the threshold policy remembers its p99 baseline,
the scheduled policy its next fire time); a fresh instance is built per
autopilot engine, so state never leaks between sessions and two same-seed
runs traverse identical state sequences.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..common.errors import ConfigError
from .observation import ClusterObservation
from .planner import PlanProjection, WhatIfPlanner

#: The four decision actions a policy can return.
ACTION_NONE = "none"
ACTION_ADD = "add"
ACTION_REMOVE = "remove"
ACTION_RETARGET = "retarget"

ACTIONS = (ACTION_NONE, ACTION_ADD, ACTION_REMOVE, ACTION_RETARGET)


@dataclass(frozen=True)
class PolicyDecision:
    """One policy verdict: do nothing, or rebalance to ``target_nodes``."""

    action: str
    target_nodes: Optional[int] = None
    reason: str = ""
    #: The winning what-if projection, when the policy simulated candidates.
    projection: Optional[PlanProjection] = None

    def __post_init__(self) -> None:
        if self.action not in ACTIONS:
            raise ConfigError(f"unknown decision action {self.action!r}; one of {ACTIONS}")
        if self.action != ACTION_NONE and (
            self.target_nodes is None or self.target_nodes < 1
        ):
            raise ConfigError(f"a {self.action!r} decision needs target_nodes >= 1")

    @property
    def wants_rebalance(self) -> bool:
        return self.action != ACTION_NONE

    def signature(self) -> Tuple[str, Optional[int]]:
        """The identity hysteresis streaks compare on."""
        return (self.action, self.target_nodes)


def no_action(reason: str = "") -> PolicyDecision:
    return PolicyDecision(ACTION_NONE, reason=reason)


def _action_for(target_nodes: int, current_nodes: int) -> str:
    if target_nodes > current_nodes:
        return ACTION_ADD
    if target_nodes < current_nodes:
        return ACTION_REMOVE
    return ACTION_RETARGET


class AutopilotPolicy:
    """Base class; subclasses implement :meth:`decide`."""

    name = "base"

    def decide(
        self, observation: ClusterObservation, planner: WhatIfPlanner
    ) -> PolicyDecision:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"{type(self).__name__}()"


class ThresholdPolicy(AutopilotPolicy):
    """Trigger rules over skew, hotspots, capacity, and tail latency.

    Parameters
    ----------
    skew_threshold:
        Per-node byte skew (max/mean) above which the policy re-targets the
        current node set (re-running Algorithm 2 spreads drifted buckets).
    partition_skew_threshold:
        Optional per-partition skew trigger — hotspot partitions push this up
        before whole nodes look imbalanced.  ``None`` disables it.
    node_capacity_bytes:
        Per-node capacity budget; ``None`` disables both capacity triggers.
    capacity_high / capacity_low:
        Peak utilization above ``capacity_high`` adds ``step`` nodes; mean
        utilization below ``capacity_low`` removes ``step`` (when the
        post-removal mean would still sit comfortably under the high mark).
    p99_regression_factor:
        Optional: when the cumulative steady write p99 exceeds this multiple
        of the first non-zero baseline it observed, add a node.
    hot_bucket_ops:
        Optional: when any single bucket's combined read+write heat (from
        the observation's per-bucket heat counters, populated only while a
        tracing session is attached) exceeds this count, re-target the
        current node set so Algorithm 2 can spread the hot bucket's
        neighbours.  ``None`` disables it; untraced sessions report zero
        heat, so the trigger never fires without a `TimelineRecorder`.
    """

    name = "Threshold"

    def __init__(
        self,
        skew_threshold: float = 1.5,
        partition_skew_threshold: Optional[float] = None,
        node_capacity_bytes: Optional[int] = None,
        capacity_high: float = 0.85,
        capacity_low: float = 0.25,
        p99_regression_factor: Optional[float] = None,
        hot_bucket_ops: Optional[int] = None,
        step: int = 1,
        min_nodes: int = 1,
        max_nodes: Optional[int] = None,
    ) -> None:
        if skew_threshold < 1.0:
            raise ConfigError("skew_threshold must be at least 1.0")
        if not 0.0 < capacity_low < capacity_high:
            raise ConfigError("need 0 < capacity_low < capacity_high")
        if step < 1:
            raise ConfigError("step must be at least 1")
        if hot_bucket_ops is not None and hot_bucket_ops < 1:
            raise ConfigError("hot_bucket_ops must be at least 1")
        self.skew_threshold = skew_threshold
        self.partition_skew_threshold = partition_skew_threshold
        self.node_capacity_bytes = node_capacity_bytes
        self.capacity_high = capacity_high
        self.capacity_low = capacity_low
        self.p99_regression_factor = p99_regression_factor
        self.hot_bucket_ops = hot_bucket_ops
        self.step = step
        self.min_nodes = min_nodes
        self.max_nodes = max_nodes
        self._baseline_p99: Optional[float] = None

    def decide(
        self, observation: ClusterObservation, planner: WhatIfPlanner
    ) -> PolicyDecision:
        nodes = observation.num_nodes
        can_add = self.max_nodes is None or nodes + self.step <= self.max_nodes
        can_remove = nodes - self.step >= self.min_nodes

        if self.node_capacity_bytes is not None and can_add:
            peak = observation.utilization(self.node_capacity_bytes)
            if peak >= self.capacity_high:
                return PolicyDecision(
                    ACTION_ADD,
                    target_nodes=nodes + self.step,
                    reason=(
                        f"capacity pressure: peak node utilization "
                        f"{peak:.2f} >= {self.capacity_high:.2f}"
                    ),
                )

        # Both skew triggers re-target the current node set — but only when
        # Algorithm 2 would actually move buckets.  Skew a rebalance cannot
        # fix (e.g. one dominant never-split bucket) must not burn an empty
        # rebalance every cooldown window.
        if observation.node_balance_ratio > self.skew_threshold:
            if planner.project(nodes).buckets_moved > 0:
                return PolicyDecision(
                    ACTION_RETARGET,
                    target_nodes=nodes,
                    reason=(
                        f"node skew {observation.node_balance_ratio:.2f} > "
                        f"{self.skew_threshold:.2f}"
                    ),
                )

        if self.hot_bucket_ops is not None:
            hottest = observation.max_bucket_heat()
            if hottest > self.hot_bucket_ops and planner.project(nodes).buckets_moved > 0:
                return PolicyDecision(
                    ACTION_RETARGET,
                    target_nodes=nodes,
                    reason=(
                        f"hot bucket: {hottest} ops on one bucket > "
                        f"{self.hot_bucket_ops}"
                    ),
                )

        if (
            self.partition_skew_threshold is not None
            and observation.partition_balance_ratio > self.partition_skew_threshold
        ):
            if planner.project(nodes).buckets_moved > 0:
                return PolicyDecision(
                    ACTION_RETARGET,
                    target_nodes=nodes,
                    reason=(
                        f"hotspot partition skew {observation.partition_balance_ratio:.2f} > "
                        f"{self.partition_skew_threshold:.2f}"
                    ),
                )

        if self.p99_regression_factor is not None:
            current = observation.steady_write_p99
            if self._baseline_p99 is None:
                if current > 0:
                    self._baseline_p99 = current
            elif can_add and current > self.p99_regression_factor * self._baseline_p99:
                baseline = self._baseline_p99
                # Re-baseline at the regressed level: the cumulative histogram
                # can never fall back, so without this one regression episode
                # would re-fire an add on every evaluation forever.
                self._baseline_p99 = current
                return PolicyDecision(
                    ACTION_ADD,
                    target_nodes=nodes + self.step,
                    reason=(
                        f"steady write p99 regressed {current / baseline:.1f}x "
                        f"over the {baseline * 1e3:.3f} ms baseline"
                    ),
                )

        if self.node_capacity_bytes is not None and can_remove:
            mean = observation.mean_utilization(self.node_capacity_bytes)
            after = observation.total_bytes / (
                (nodes - self.step) * self.node_capacity_bytes
            )
            if mean < self.capacity_low and after < self.capacity_high * 0.9:
                return PolicyDecision(
                    ACTION_REMOVE,
                    target_nodes=nodes - self.step,
                    reason=(
                        f"underutilized: mean node utilization {mean:.2f} < "
                        f"{self.capacity_low:.2f}"
                    ),
                )

        return no_action("all thresholds clear")


class CostAwarePolicy(AutopilotPolicy):
    """Simulate candidate plans and pick the cheapest that restores balance.

    When a trigger fires (byte skew above ``balance_bar``, capacity pressure,
    or sustained underutilization), the policy projects every candidate —
    re-target at the current size, add up to ``max_step`` nodes, remove up to
    ``max_step`` — through the what-if planner and picks the *cheapest*
    (estimated data-movement seconds) whose projected post-move balance
    clears ``balance_bar`` and whose projected peak utilization stays under
    ``capacity_high``.  A capacity-driven trigger must act even when no
    candidate fully clears the bar, so it falls back to the best-balance
    candidate; a pure skew trigger stays put instead of paying for a move
    that would not fix the skew.
    """

    name = "CostAware"

    def __init__(
        self,
        balance_bar: float = 1.3,
        node_capacity_bytes: Optional[int] = None,
        capacity_high: float = 0.85,
        capacity_low: float = 0.3,
        max_step: int = 1,
        min_nodes: int = 1,
        max_nodes: Optional[int] = None,
        consider_retarget: bool = True,
    ) -> None:
        if balance_bar < 1.0:
            raise ConfigError("balance_bar must be at least 1.0")
        if not 0.0 < capacity_low < capacity_high:
            raise ConfigError("need 0 < capacity_low < capacity_high")
        if max_step < 1:
            raise ConfigError("max_step must be at least 1")
        self.balance_bar = balance_bar
        self.node_capacity_bytes = node_capacity_bytes
        self.capacity_high = capacity_high
        self.capacity_low = capacity_low
        self.max_step = max_step
        self.min_nodes = min_nodes
        self.max_nodes = max_nodes
        self.consider_retarget = consider_retarget

    # ------------------------------------------------------------------ decide

    def decide(
        self, observation: ClusterObservation, planner: WhatIfPlanner
    ) -> PolicyDecision:
        nodes = observation.num_nodes
        triggers = self._triggers(observation)
        if not triggers:
            return no_action("balanced and within capacity")

        projections = planner.candidates(self._candidate_sizes(nodes, triggers))
        # A re-target that moves nothing is a no-op by construction —
        # Algorithm 2 already considers the layout balanced — so it can never
        # relieve a trigger and only burns a rebalance.
        feasible = [
            p
            for p in projections
            if p.feasible and not (p.target_nodes == nodes and p.buckets_moved == 0)
        ]
        cleared = [p for p in feasible if self._clears_bar(p)]
        # Capacity pressure should act even when nothing fully clears the
        # bar — but only with a plan that genuinely relieves it.  Without
        # the improvement guard a dominant hot bucket (which no node count
        # can spread) would trigger an endless scale-out.
        improving = [p for p in feasible if self._improves(p, observation)]
        if cleared:
            # The tentpole contract: cheapest plan whose projected post-move
            # balance (and capacity headroom) clears the bar.
            best = min(
                cleared,
                key=lambda p: (
                    p.estimated_seconds,
                    abs(p.target_nodes - nodes),
                    p.target_nodes,
                ),
            )
            picked = "cheapest clearing plan"
        elif "capacity" in triggers and improving:
            best = min(
                improving,
                key=lambda p: (
                    p.projected_balance_ratio,
                    p.estimated_seconds,
                    p.target_nodes,
                ),
            )
            picked = "best-balance plan (bar not cleared)"
        else:
            return no_action(
                f"triggered ({', '.join(triggers)}) but no candidate plan clears "
                f"balance bar {self.balance_bar:.2f} or improves the layout"
            )
        action = _action_for(best.target_nodes, nodes)
        return PolicyDecision(
            action,
            target_nodes=best.target_nodes,
            reason=(
                f"{'/'.join(triggers)}: {picked} -> {best.target_nodes} nodes "
                f"(~{best.estimated_seconds:.2f}s movement, projected balance "
                f"{best.projected_balance_ratio:.2f})"
            ),
            projection=best,
        )

    # ------------------------------------------------------------------ pieces

    def _triggers(self, observation: ClusterObservation) -> List[str]:
        triggers: List[str] = []
        if self.node_capacity_bytes is not None:
            if observation.utilization(self.node_capacity_bytes) >= self.capacity_high:
                triggers.append("capacity")
            elif (
                observation.num_nodes > self.min_nodes
                and observation.mean_utilization(self.node_capacity_bytes)
                <= self.capacity_low
            ):
                triggers.append("underutilized")
        if observation.node_balance_ratio > self.balance_bar:
            triggers.append("skew")
        return triggers

    def _candidate_sizes(self, nodes: int, triggers: Sequence[str]) -> List[int]:
        sizes: List[int] = []
        # Re-targeting spreads drifted buckets but adds no capacity, so it is
        # only a candidate for pure skew; capacity pressure must grow.
        if self.consider_retarget and "skew" in triggers and "capacity" not in triggers:
            sizes.append(nodes)
        grow = "capacity" in triggers or "skew" in triggers
        for step in range(1, self.max_step + 1):
            if grow and (self.max_nodes is None or nodes + step <= self.max_nodes):
                sizes.append(nodes + step)
            if "underutilized" in triggers and nodes - step >= self.min_nodes:
                sizes.append(nodes - step)
        return sizes

    def _clears_bar(self, projection: PlanProjection) -> bool:
        if projection.projected_balance_ratio > self.balance_bar:
            return False
        if self.node_capacity_bytes is not None:
            peak = projection.projected_max_node_bytes / self.node_capacity_bytes
            if peak > self.capacity_high:
                return False
        return True

    def _improves(
        self, projection: PlanProjection, observation: ClusterObservation
    ) -> bool:
        """Whether the plan meaningfully reduces peak bytes or skew (5%+)."""
        better_peak = (
            projection.projected_max_node_bytes <= observation.max_node_bytes * 0.95
        )
        better_balance = (
            projection.projected_balance_ratio <= observation.node_balance_ratio * 0.95
        )
        return better_peak or better_balance


class ScheduledPolicy(AutopilotPolicy):
    """Cron-like maintenance on the simulated clock.

    Fires every ``interval_seconds`` of *simulated* time (the metrics clock,
    so schedules are deterministic and independent of wall-clock speed).  The
    fixed ``action`` is ``"retarget"`` (re-run Algorithm 2 at the current
    size — periodic bucket grooming), ``"add"``, or ``"remove"``; an explicit
    ``target_nodes`` overrides the action arithmetic.
    """

    name = "Scheduled"

    def __init__(
        self,
        interval_seconds: float,
        action: str = ACTION_RETARGET,
        amount: int = 1,
        target_nodes: Optional[int] = None,
        min_nodes: int = 1,
        max_nodes: Optional[int] = None,
    ) -> None:
        if interval_seconds <= 0:
            raise ConfigError("interval_seconds must be positive")
        if action not in (ACTION_ADD, ACTION_REMOVE, ACTION_RETARGET):
            raise ConfigError(
                f"scheduled action must be add/remove/retarget, got {action!r}"
            )
        if amount < 1:
            raise ConfigError("amount must be at least 1")
        self.interval_seconds = interval_seconds
        self.action = action
        self.amount = amount
        self.target_nodes = target_nodes
        self.min_nodes = min_nodes
        self.max_nodes = max_nodes
        self._next_fire: Optional[float] = None

    def decide(
        self, observation: ClusterObservation, planner: WhatIfPlanner
    ) -> PolicyDecision:
        now = observation.simulated_seconds
        if self._next_fire is None:
            self._next_fire = now + self.interval_seconds
            return no_action("schedule armed")
        if now < self._next_fire:
            return no_action("not due yet")
        while self._next_fire <= now:
            self._next_fire += self.interval_seconds
        target = self._target_for(observation.num_nodes)
        if target is None:
            return no_action("scheduled action hit the node-count bounds")
        return PolicyDecision(
            _action_for(target, observation.num_nodes),
            target_nodes=target,
            reason=f"scheduled {self.action} every {self.interval_seconds:g}s",
        )

    def _target_for(self, nodes: int) -> Optional[int]:
        if self.target_nodes is not None:
            return self.target_nodes if self.target_nodes >= 1 else None
        if self.action == ACTION_ADD:
            target = nodes + self.amount
            return target if self.max_nodes is None or target <= self.max_nodes else None
        if self.action == ACTION_REMOVE:
            target = nodes - self.amount
            return target if target >= self.min_nodes else None
        return nodes


# ---------------------------------------------------------------------------
# The policy registry (mirrors the rebalancing-strategy registry)
# ---------------------------------------------------------------------------

#: canonical name -> policy factory.
_POLICY_FACTORIES: Dict[str, Any] = {}
#: alias (lowercase) -> canonical name.
_POLICY_ALIASES: Dict[str, str] = {}


def register_policy(name: str, factory: "Callable[..., Any]", aliases: Sequence[str] = ()) -> None:
    """Register an autopilot policy under ``name`` (plus ``aliases``).

    ``factory`` is any callable returning a policy object (usually the policy
    class itself); extra keyword arguments given to :func:`policy_by_name` are
    forwarded to it.  Registration is case-insensitive and re-registering a
    name replaces the previous entry, so tests and downstream code can swap
    in instrumented policies.
    """
    if not name:
        raise ConfigError("policy name must not be empty")
    canonical = name.lower()
    _POLICY_FACTORIES[canonical] = factory
    _POLICY_ALIASES[canonical] = canonical
    for alias in aliases:
        _POLICY_ALIASES[alias.lower()] = canonical


def available_policies() -> List[str]:
    """Canonical names accepted by :func:`policy_by_name`, sorted."""
    return sorted(_POLICY_FACTORIES)


def policy_by_name(name: str, **kwargs: Any) -> AutopilotPolicy:
    """Resolve a registered policy name (or alias) to a fresh instance."""
    normalized = str(name).strip().lower()
    canonical = _POLICY_ALIASES.get(normalized)
    if canonical is None:
        raise ConfigError(
            f"unknown autopilot policy {name!r}; "
            f"valid choices: {', '.join(available_policies())} "
            f"(aliases: {', '.join(sorted(set(_POLICY_ALIASES) - set(_POLICY_FACTORIES)))})"
        )
    return _POLICY_FACTORIES[canonical](**kwargs)


def resolve_policy(policy: "str | AutopilotPolicy", **kwargs: Any) -> AutopilotPolicy:
    """Resolve a policy given as a registered name or an instance."""
    if isinstance(policy, str):
        return policy_by_name(policy, **kwargs)
    if kwargs:
        raise ConfigError("policy options are only valid with a policy name")
    if not hasattr(policy, "decide"):
        raise ConfigError(
            f"{policy!r} is not an autopilot policy (missing decide); "
            f"pass an instance or one of: {', '.join(available_policies())}"
        )
    return policy


register_policy("threshold", ThresholdPolicy, aliases=("skew", "thresholds"))
register_policy("cost_aware", CostAwarePolicy, aliases=("costaware", "cost-aware", "cost"))
register_policy("scheduled", ScheduledPolicy, aliases=("cron", "schedule"))
