"""The autopilot engine: guardrailed execution of policy decisions.

An :class:`Autopilot` closes the loop for one
:class:`~repro.api.database.Database` session: it subscribes to the session's
``op.*`` events, re-evaluates its policy every ``check_every_ops`` operations
(so *traffic itself* drives the control loop — no background thread, and
evaluation cadence is deterministic in the operation stream), and executes
the policy's decisions through ``db.rebalance`` behind production guardrails:

* **max one rebalance in flight** — evaluations during a rebalance are
  skipped (the registry phase says one is running, and a re-entrancy latch
  covers the op samples the rebalance itself emits);
* **cooldown windows** — after acting (or planning, in dry-run mode) the
  engine stays quiet for ``cooldown_seconds`` of simulated time;
* **hysteresis** — a decision must be re-affirmed on ``hysteresis``
  consecutive evaluations before it executes, so one noisy observation
  cannot flap the cluster;
* **dry-run mode** — decisions are logged and emitted but never executed.

Every decision emits ``autopilot.*`` lifecycle events onto the session bus,
so the metrics registry counts them (they appear in
:meth:`~repro.metrics.MetricsRegistry.snapshot`) and client callbacks observe
them like any other cluster event.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Mapping, Optional, TYPE_CHECKING, Tuple

from ..common.errors import ConfigError
from .observation import ClusterObservation
from .planner import WhatIfPlanner
from .policy import PolicyDecision, resolve_policy

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..api.database import Database
    from ..cluster.reports import ClusterRebalanceReport
    from ..common.events import Event, Subscription

#: Decision outcomes recorded in the autopilot log.
OUTCOME_EXECUTED = "executed"
OUTCOME_DRY_RUN = "dry_run"
OUTCOME_COOLDOWN = "cooldown"
OUTCOME_HYSTERESIS = "hysteresis"
OUTCOME_MAX_REBALANCES = "max_rebalances"


@dataclass(frozen=True)
class AutopilotDecision:
    """One logged decision: what the policy wanted and what the engine did."""

    seq: int
    simulated_seconds: float
    policy: str
    action: str
    target_nodes: Optional[int]
    reason: str
    outcome: str

    def signature(self) -> Tuple[str, Optional[int], str]:
        """The comparable identity (the determinism tests compare these)."""
        return (self.action, self.target_nodes, self.outcome)


class Autopilot:
    """Watches one database session and rebalances it automatically.

    Parameters
    ----------
    db:
        The open session to control.
    policy:
        Policy instance or registered name (``"threshold"``, ``"cost_aware"``,
        ``"scheduled"``); ``policy_options`` are forwarded to the factory when
        a name is given.
    check_every_ops:
        Evaluate the policy once per this many ``op.*`` events.
    cooldown_seconds:
        Minimum simulated seconds between executed (or dry-run) actions.
    hysteresis:
        Consecutive evaluations that must reach the same decision before it
        executes (1 = act immediately).
    dry_run:
        Log and emit decisions without executing any rebalance.
    max_rebalances:
        Optional cap on executed rebalances for the engine's lifetime.
    """

    def __init__(
        self,
        db: "Database",
        policy: "str | object" = "threshold",
        *,
        policy_options: Optional[Mapping[str, Any]] = None,
        check_every_ops: int = 50,
        cooldown_seconds: float = 0.0,
        hysteresis: int = 1,
        dry_run: bool = False,
        max_rebalances: Optional[int] = None,
    ) -> None:
        if check_every_ops < 1:
            raise ConfigError("check_every_ops must be at least 1")
        if cooldown_seconds < 0:
            raise ConfigError("cooldown_seconds must be non-negative")
        if hysteresis < 1:
            raise ConfigError("hysteresis must be at least 1")
        if max_rebalances is not None and max_rebalances < 0:
            raise ConfigError("max_rebalances must be non-negative")
        self.db = db
        self.policy = resolve_policy(policy, **dict(policy_options or {}))
        self.planner = WhatIfPlanner(db)
        self.check_every_ops = check_every_ops
        self.cooldown_seconds = cooldown_seconds
        self.hysteresis = hysteresis
        self.dry_run = dry_run
        self.max_rebalances = max_rebalances
        #: Every non-trivial decision, in order (the audit log).
        self.decisions: List[AutopilotDecision] = []
        #: Reports of the rebalances this engine executed.
        self.rebalance_reports: "List[ClusterRebalanceReport]" = []
        self._subscription: "Optional[Subscription]" = None
        self._ops_seen = 0
        self._last_check_at = 0
        self._last_action_at: Optional[float] = None
        self._streak_signature: Optional[Tuple[str, Optional[int]]] = None
        self._streak_count = 0
        self._stepping = False
        self._active = False

    # -------------------------------------------------------------- lifecycle

    @property
    def active(self) -> bool:
        return self._active

    @property
    def rebalances_triggered(self) -> int:
        return len(self.rebalance_reports)

    def start(self) -> "Autopilot":
        """Attach to the session's op stream; idempotent."""
        if self._active:
            return self
        self._active = True
        self._subscription = self.db.events.on("op.*", self._on_op)
        self.db.events.emit(
            "autopilot.start",
            policy=self.policy.name,
            check_every_ops=self.check_every_ops,
            cooldown_seconds=self.cooldown_seconds,
            hysteresis=self.hysteresis,
            dry_run=self.dry_run,
        )
        return self

    def stop(self) -> None:
        """Detach from the op stream; idempotent."""
        if not self._active:
            return
        self._active = False
        if self._subscription is not None:
            self._subscription.cancel()
            self._subscription = None
        self.db.events.emit(
            "autopilot.stop",
            decisions=len(self.decisions),
            rebalances=self.rebalances_triggered,
        )

    def __enter__(self) -> "Autopilot":
        return self.start()

    def __exit__(self, exc_type: object, exc: object, tb: object) -> None:
        self.stop()

    # ------------------------------------------------------------ the op hook

    def _on_op(self, event: "Event") -> None:
        # A batched telemetry event carries many op samples; count them all so
        # the evaluation cadence tracks traffic volume, not event count.  For
        # the per-op stream (count 1) the trigger points are exactly the old
        # ``ops_seen % check_every_ops == 0`` ones.
        if event.name == "op.batch":
            self._ops_seen += len(event.get("latencies", ())) or int(event.get("count", 1))
        else:
            self._ops_seen += 1
        if self._ops_seen - self._last_check_at >= self.check_every_ops:
            self._last_check_at = self._ops_seen
            self.step()

    # ------------------------------------------------------------- evaluation

    def step(self) -> Optional[AutopilotDecision]:
        """Evaluate the policy once; returns the logged decision, if any.

        Called automatically every ``check_every_ops`` operations, but also
        callable directly (e.g. from a driver loop or a test).  Evaluations
        during an in-flight rebalance are skipped — including the re-entrant
        ones triggered by the op samples the rebalance itself emits.
        """
        if self._stepping or not self._active or self.db.closed:
            return None
        self._stepping = True
        try:
            observation = ClusterObservation.capture(self.db)
            if observation.in_rebalance:
                return None
            decision = self.policy.decide(observation, self.planner)
            # Tracing hook point: report every evaluation, including the
            # no-action ones `autopilot.decision` never records.  Probed
            # first so untraced sessions skip the payload entirely.
            events = self.db.events
            if events.has_subscribers("trace.autopilot.evaluate"):
                events.emit(
                    "trace.autopilot.evaluate",
                    policy=self.policy.name,
                    action=decision.action,
                    reason=decision.reason,
                )
            if not decision.wants_rebalance:
                self._streak_signature = None
                self._streak_count = 0
                return None
            return self._apply(observation, decision)
        finally:
            self._stepping = False

    def _apply(
        self, observation: ClusterObservation, decision: PolicyDecision
    ) -> AutopilotDecision:
        if decision.signature() == self._streak_signature:
            self._streak_count += 1
        else:
            self._streak_signature = decision.signature()
            self._streak_count = 1

        outcome = self._guardrail_veto(observation)
        record = AutopilotDecision(
            seq=len(self.decisions),
            simulated_seconds=observation.simulated_seconds,
            policy=self.policy.name,
            action=decision.action,
            target_nodes=decision.target_nodes,
            reason=decision.reason,
            outcome=outcome or (OUTCOME_DRY_RUN if self.dry_run else OUTCOME_EXECUTED),
        )
        self.decisions.append(record)
        self.db.events.emit(
            "autopilot.decision",
            policy=record.policy,
            action=record.action,
            target_nodes=record.target_nodes,
            reason=record.reason,
            outcome=record.outcome,
        )
        if outcome is not None:
            self.db.events.emit(
                "autopilot.skip",
                reason=outcome,
                action=record.action,
                target_nodes=record.target_nodes,
            )
            return record
        if self.dry_run:
            # Dry-run actions consume the cooldown so the log is paced the
            # same way real actions would be.
            self._last_action_at = observation.simulated_seconds
            self._reset_streak()
            self.db.events.emit(
                "autopilot.dry_run",
                action=record.action,
                target_nodes=record.target_nodes,
                reason=record.reason,
            )
            return record
        self._execute(record, decision)
        return record

    def _guardrail_veto(self, observation: ClusterObservation) -> Optional[str]:
        """The guardrail that blocks this decision, or ``None`` to proceed."""
        if (
            self.max_rebalances is not None
            and self.rebalances_triggered >= self.max_rebalances
        ):
            return OUTCOME_MAX_REBALANCES
        if (
            self._last_action_at is not None
            and observation.simulated_seconds - self._last_action_at
            < self.cooldown_seconds
        ):
            return OUTCOME_COOLDOWN
        if self._streak_count < self.hysteresis:
            return OUTCOME_HYSTERESIS
        return None

    def _execute(self, record: AutopilotDecision, decision: PolicyDecision) -> None:
        self.db.events.emit(
            "autopilot.rebalance.start",
            action=record.action,
            target_nodes=record.target_nodes,
            reason=record.reason,
        )
        # Policy-triggered rebalances are exempt from chaos crash plans:
        # scheduled kills target the scenario's explicit rebalance steps.
        report = self.db.rebalance(target_nodes=record.target_nodes, arm_chaos=False)
        self.rebalance_reports.append(report)
        # Cooldown starts when the rebalance *finishes* (the metrics clock
        # advanced past its duration while it ran).
        self._last_action_at = self.db.metrics.clock.now
        self._reset_streak()
        self.db.events.emit(
            "autopilot.rebalance.complete",
            action=record.action,
            target_nodes=record.target_nodes,
            new_nodes=report.new_nodes,
            committed=report.committed,
            report=report,
        )

    def _reset_streak(self) -> None:
        self._streak_signature = None
        self._streak_count = 0

    # -------------------------------------------------------------- reporting

    def decision_trace(self) -> List[Tuple[str, Optional[int], str]]:
        """The comparable decision history (what determinism tests assert)."""
        return [decision.signature() for decision in self.decisions]

    def summary(self) -> str:
        lines = [
            f"autopilot[{self.policy.name}]: {len(self.decisions)} decisions, "
            f"{self.rebalances_triggered} rebalances"
            f"{' (dry-run)' if self.dry_run else ''}"
        ]
        for decision in self.decisions:
            target = f" -> {decision.target_nodes} nodes" if decision.target_nodes else ""
            lines.append(
                f"  t={decision.simulated_seconds:9.3f}s {decision.action}{target} "
                f"[{decision.outcome}] {decision.reason}"
            )
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "active" if self._active else "stopped"
        return (
            f"Autopilot({self.policy.name!r}, {state}, "
            f"decisions={len(self.decisions)}, rebalances={self.rebalances_triggered})"
        )
