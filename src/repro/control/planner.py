"""Simulated what-if planning: projecting a rebalance without running it.

The :class:`WhatIfPlanner` answers "what would resizing to N nodes cost, and
how balanced would the cluster be afterwards?" *without* touching the cluster.
For every directory-routed dataset it runs the same Algorithm 2 (BALANCE)
greedy pass the real rebalance operation would run
(:func:`repro.rebalance.plan.compute_balanced_directory` is pure), prices the
resulting bucket moves with the cluster's
:class:`~repro.cluster.cost_model.CostModel` under slowest-node semantics,
and projects the per-node byte distribution after the moves.  The Hashing
baseline (modulo routing) is modelled as the paper describes it: the dataset
is rebuilt hash-partitioned over the new node set, moving nearly everything.

Projections are estimates, not measurements — they price data movement only
(scan at the source, ship, load at the destination, plus per-record
repartitioning CPU and the protocol's control messages), which is the
dominant term the paper's Figure 7 measures.  They are also deterministic:
same cluster state, same projection.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, TYPE_CHECKING, Tuple

from ..hashing.extendible import GlobalDirectory
from ..rebalance.plan import compute_balanced_directory
from .observation import balance_ratio

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..api.database import Database


@dataclass(frozen=True)
class PlanProjection:
    """The simulated outcome of one candidate resize."""

    target_nodes: int
    feasible: bool
    #: Why an infeasible candidate was rejected (empty when feasible).
    reason: str = ""
    buckets_moved: int = 0
    bytes_moved: int = 0
    #: Estimated records moved (apportioned from byte shares).
    records_moved: int = 0
    #: Estimated data-movement seconds (slowest node completes the step).
    estimated_seconds: float = 0.0
    #: Projected per-node byte skew after the moves (max/mean, 1.0 = perfect).
    projected_balance_ratio: float = 1.0
    projected_max_node_bytes: int = 0
    #: ``(node_id, bytes)`` after the moves, sorted by node id.
    projected_storage_per_node: Tuple[Tuple[str, int], ...] = field(default_factory=tuple)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        if not self.feasible:
            return f"PlanProjection(target={self.target_nodes}, infeasible: {self.reason})"
        return (
            f"PlanProjection(target={self.target_nodes}, "
            f"{self.buckets_moved} buckets / {self.bytes_moved} bytes, "
            f"~{self.estimated_seconds:.2f}s, balance={self.projected_balance_ratio:.2f})"
        )


class WhatIfPlanner:
    """Simulates candidate resizes of one database session's cluster."""

    def __init__(self, db: "Database") -> None:
        self.db = db

    # ------------------------------------------------------------- projection

    def project(self, target_nodes: int) -> PlanProjection:
        """Project resizing the cluster to ``target_nodes`` (which may equal
        the current size: a *re-target* re-runs Algorithm 2 over the same
        partitions to spread buckets that drifted out of balance)."""
        cluster = self.db.cluster
        if target_nodes < 1:
            return PlanProjection(
                target_nodes, feasible=False, reason="clusters need at least one node"
            )
        ppn = cluster.partitions_per_node
        target_pids = list(range(target_nodes * ppn))
        all_nodes = max(target_nodes, cluster.num_nodes)
        node_of = {pid: f"nc{pid // ppn}" for pid in range(all_nodes * ppn)}
        target_node_ids = [f"nc{index}" for index in range(target_nodes)]

        projected_bytes: Dict[int, int] = {pid: 0 for pid in target_pids}
        shipped_from: Dict[str, int] = {}
        received_by: Dict[str, int] = {}
        buckets_moved = 0
        bytes_moved = 0
        records_moved = 0

        for name in cluster.dataset_names():
            runtime = cluster.dataset(name)
            part_bytes = {pid: p.size_bytes for pid, p in runtime.partitions.items()}
            for pid, size in part_bytes.items():
                if pid in projected_bytes:
                    projected_bytes[pid] += size
            dataset_bytes = sum(part_bytes.values())
            dataset_records = runtime.record_count()
            if runtime.routing_mode != "directory" or runtime.global_directory is None:
                # Hashing baseline: the dataset is recreated hash-partitioned
                # over the target set, so virtually every record moves and the
                # result is evenly spread.
                buckets_moved += len(runtime.partitions)
                bytes_moved += dataset_bytes
                records_moved += dataset_records
                for pid, size in part_bytes.items():
                    node = node_of[pid]
                    shipped_from[node] = shipped_from.get(node, 0) + size
                    if pid in projected_bytes:
                        projected_bytes[pid] -= size
                if target_pids:
                    share = dataset_bytes // len(target_pids)
                    for pid in target_pids:
                        projected_bytes[pid] += share
                        node = node_of[pid]
                        received_by[node] = received_by.get(node, 0) + share
                continue

            bucket_bytes: Dict[object, int] = {}
            for partition in runtime.partitions.values():
                bucket_bytes.update(partition.bucket_sizes())
            # Plan from the NCs' *local* directories, exactly as the real
            # operation's initialization phase does — bucket splits happen
            # locally, so the CC's global directory may be stale and would
            # under-count the movable buckets.
            local_directories = {
                pid: partition.primary.directory
                for pid, partition in runtime.partitions.items()
            }
            refreshed = GlobalDirectory.from_local_directories(local_directories)
            plan = compute_balanced_directory(refreshed, target_pids, node_of)
            for move in plan.moves:
                size = bucket_bytes.get(move.bucket, 0)
                buckets_moved += 1
                bytes_moved += size
                if dataset_bytes:
                    records_moved += round(dataset_records * size / dataset_bytes)
                if move.source_partition is not None:
                    source_node = node_of[move.source_partition]
                    shipped_from[source_node] = shipped_from.get(source_node, 0) + size
                    if move.source_partition in projected_bytes:
                        projected_bytes[move.source_partition] -= size
                destination_node = node_of[move.destination_partition]
                received_by[destination_node] = received_by.get(destination_node, 0) + size
                projected_bytes[move.destination_partition] += size

        per_node: Dict[str, int] = {node: 0 for node in target_node_ids}
        for pid, size in projected_bytes.items():
            per_node[node_of[pid]] += max(0, size)
        node_values = [per_node[node] for node in target_node_ids]
        balance = balance_ratio(node_values)

        return PlanProjection(
            target_nodes=target_nodes,
            feasible=True,
            buckets_moved=buckets_moved,
            bytes_moved=bytes_moved,
            records_moved=records_moved,
            estimated_seconds=self._movement_seconds(
                shipped_from, received_by, records_moved
            ),
            projected_balance_ratio=balance,
            projected_max_node_bytes=max(node_values) if node_values else 0,
            projected_storage_per_node=tuple(sorted(per_node.items())),
        )

    def candidates(self, target_node_counts: Iterable[int]) -> List[PlanProjection]:
        """Project every candidate size (deduplicated, ascending)."""
        return [self.project(count) for count in sorted(set(target_node_counts))]

    # ---------------------------------------------------------------- costing

    def _movement_seconds(
        self,
        shipped_from: Dict[str, int],
        received_by: Dict[str, int],
        records_moved: int,
    ) -> float:
        """Price the projected movement with slowest-node semantics.

        Each node scans and ships what leaves it and loads what arrives; the
        step completes when the slowest node finishes (Section II-A).  The
        repartitioning CPU is apportioned by each node's share of the moved
        bytes.
        """
        cost = self.db.cluster.cost
        total_bytes = sum(shipped_from.values()) + sum(received_by.values())
        per_node: Dict[str, float] = {}
        for node in set(shipped_from) | set(received_by):
            out_bytes = shipped_from.get(node, 0)
            in_bytes = received_by.get(node, 0)
            share = (out_bytes + in_bytes) / total_bytes if total_bytes else 0.0
            per_node[node] = (
                cost.disk_read_time(out_bytes)
                + cost.network_time(max(out_bytes, in_bytes))
                + cost.disk_write_time(in_bytes)
                + cost.compare_time(records_moved * share)
            )
        # Control messages: one round trip per participating node.
        return cost.slowest(per_node) + cost.rpc_time(2 * max(1, len(per_node)))
