"""Deterministic chaos: declared faults, measured degradation.

The public surface of the fault-injection subsystem behind a scenario's
``[chaos]`` section.  A :class:`ChaosEngine` schedules straggler windows,
CC↔NC partitions, mid-rehash crash plans, and load distortions on the
simulated clock, all drawn from a dedicated seeded RNG stream; the client
retry path it powers turns the resulting misses and timeouts into graceful,
counted degradation.  See ``docs/CHAOS.md`` for the fault taxonomy and the
determinism guarantees.
"""

from .engine import (
    ChaosEngine,
    CrashPlan,
    LoadWindow,
    PartitionWindow,
    RetryPolicy,
    StragglerWindow,
)

__all__ = [
    "ChaosEngine",
    "CrashPlan",
    "LoadWindow",
    "PartitionWindow",
    "RetryPolicy",
    "StragglerWindow",
]
