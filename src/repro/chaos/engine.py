"""The deterministic chaos engine: declarative fault injection on the bus.

A :class:`ChaosEngine` turns a scenario's ``[chaos]`` section into scheduled
adversity on the simulated clock:

* **straggler windows** scale a node's share of every slowest-node rollup
  (feed ingest, rebalance phases, scatter queries), so one slow NC genuinely
  drags cluster-level durations;
* **partition windows** freeze the client's directory view, so point reads
  can land on a moved bucket and pay a routing miss + refresh, with optional
  simulated RPC timeouts absorbed by capped exponential backoff;
* **crash plans** generalise the scripted ``fault_sites`` into time-triggered
  kills: once the clock passes ``after_seconds``, the next explicit rebalance
  is armed with a :class:`~repro.rebalance.operation.FaultInjector` at the
  planned site;
* **backpressure / burst windows** stretch feed ingest and client op latency
  by a factor, distorting the workload schedule without touching its RNG.

Every draw (unpinned straggler nodes, crash sites, timeout coin flips) comes
from one dedicated ``random.Random(f"chaos:{seed}")`` stream, so the
workload driver's stream is untouched and record → replay stays zero-diff.
Each window announces itself (``chaos.*``) exactly once, on its first
effect; the client retry path narrates every miss and backoff (``retry.*``).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Sequence, Set, Tuple, TYPE_CHECKING

from ..common.errors import ConfigError
from ..rebalance.operation import FAULT_SITES

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..cluster.controller import DatasetRuntime
    from ..cluster.cost_model import CostModel
    from ..common.clock import SimulatedClock
    from ..common.events import EventBus

__all__ = [
    "ChaosEngine",
    "CrashPlan",
    "LoadWindow",
    "PartitionWindow",
    "RetryPolicy",
    "StragglerWindow",
]


@dataclass(frozen=True)
class StragglerWindow:
    """One node running slow for a simulated-time window.

    While ``start <= now < start + duration``, the node's entry in every
    per-node duration rollup is multiplied by ``multiplier`` — the
    slowest-node semantics of the cost model do the rest.  ``node=None``
    leaves the victim to a deterministic draw from the chaos RNG stream.
    """

    start: float
    duration: float
    multiplier: float
    node: Optional[str] = None


@dataclass(frozen=True)
class PartitionWindow:
    """A CC↔NC partition: the client's directory view goes stale.

    While the window is open, point reads route through a routing snapshot
    captured at the window's first read; keys whose bucket has since moved
    pay a routing miss (wasted hop + directory refresh).  Each read also
    risks a simulated RPC timeout with ``timeout_probability``, absorbed by
    the capped exponential backoff of the engine's :class:`RetryPolicy`.
    """

    start: float
    duration: float
    timeout_probability: float = 0.0


@dataclass(frozen=True)
class CrashPlan:
    """A scheduled mid-rehash crash at one ``FAULT_SITES`` site.

    Once the simulated clock passes ``after_seconds``, the next explicit
    rebalance is armed to crash at ``site`` (drawn from the chaos RNG when
    unpinned); recovery then proceeds through ``Database.recover()``.
    """

    after_seconds: float
    site: Optional[str] = None


@dataclass(frozen=True)
class LoadWindow:
    """A multiplicative load distortion (feed backpressure or client burst)."""

    start: float
    duration: float
    factor: float


@dataclass(frozen=True)
class RetryPolicy:
    """The client's capped-exponential-backoff parameters."""

    max_attempts: int = 3
    backoff_base_seconds: float = 0.001
    backoff_cap_seconds: float = 0.05

    def delay(self, attempt: int) -> float:
        """The backoff before retry ``attempt`` (1-based), capped."""
        return min(
            self.backoff_base_seconds * (2.0 ** (attempt - 1)),
            self.backoff_cap_seconds,
        )


class ChaosEngine:
    """Deterministic fault injection for one database session.

    Installed on ``cluster.chaos`` by :meth:`repro.api.Database.enable_chaos`;
    every hot path probes ``cluster.chaos is not None`` once, so sessions
    without chaos stay bit-identical to builds that predate it.  All draws
    come from the dedicated ``chaos:<seed>`` RNG stream and every unpinned
    choice (straggler victims, crash sites) is resolved at construction in
    declaration order, so the whole fault schedule is a pure function of the
    spec and the seed.
    """

    def __init__(
        self,
        *,
        clock: "SimulatedClock",
        cost: "CostModel",
        events: "EventBus",
        seed: int,
        node_ids: Sequence[str],
        stragglers: Sequence[StragglerWindow] = (),
        random_stragglers: int = 0,
        straggler_horizon_seconds: float = 10.0,
        partitions: Sequence[PartitionWindow] = (),
        crashes: Sequence[CrashPlan] = (),
        backpressure: Sequence[LoadWindow] = (),
        bursts: Sequence[LoadWindow] = (),
        retry: Optional[RetryPolicy] = None,
    ) -> None:
        if not node_ids:
            raise ConfigError("chaos needs at least one node to torment")
        self._clock = clock
        self._cost = cost
        self._events = events
        self.retry = retry or RetryPolicy()
        self.rng = random.Random(f"chaos:{seed}")
        self.stragglers: List[StragglerWindow] = [
            self._pin_straggler(window, node_ids) for window in stragglers
        ]
        for _ in range(random_stragglers):
            # Fixed draw order (node, start, duration, multiplier) keeps the
            # schedule byte-stable across runs and PYTHONHASHSEED values.
            node = node_ids[self.rng.randrange(len(node_ids))]
            start = self.rng.uniform(0.0, straggler_horizon_seconds)
            duration = self.rng.uniform(
                0.1 * straggler_horizon_seconds, 0.5 * straggler_horizon_seconds
            )
            multiplier = self.rng.uniform(2.0, 6.0)
            self.stragglers.append(
                StragglerWindow(start=start, duration=duration, multiplier=multiplier, node=node)
            )
        self.partitions: List[PartitionWindow] = list(partitions)
        self.crashes: List[CrashPlan] = [self._pin_crash(plan) for plan in crashes]
        self.backpressure: List[LoadWindow] = list(backpressure)
        self.bursts: List[LoadWindow] = list(bursts)
        #: ``(site, clock reading)`` per fault that actually fired.
        self.faults: List[Tuple[str, float]] = []
        self._recovered_at: Optional[float] = None
        #: Windows that already announced themselves on the bus.
        self._announced: Set[Tuple[str, int]] = set()
        #: Frozen routing views per dataset while a partition window is open.
        self._stale: Dict[str, Any] = {}

    def _pin_straggler(self, window: StragglerWindow, node_ids: Sequence[str]) -> StragglerWindow:
        if window.node is not None:
            return window
        node = node_ids[self.rng.randrange(len(node_ids))]
        return StragglerWindow(
            start=window.start,
            duration=window.duration,
            multiplier=window.multiplier,
            node=node,
        )

    def _pin_crash(self, plan: CrashPlan) -> CrashPlan:
        if plan.site is not None:
            if plan.site not in FAULT_SITES:
                raise ConfigError(
                    f"unknown crash site {plan.site!r}; expected one of {', '.join(FAULT_SITES)}"
                )
            return plan
        site = FAULT_SITES[self.rng.randrange(len(FAULT_SITES))]
        return CrashPlan(after_seconds=plan.after_seconds, site=site)

    # ------------------------------------------------------------- stragglers

    def _active(self, windows: Sequence[Any]) -> List[Tuple[int, Any]]:
        now = self._clock.now
        return [
            (index, window)
            for index, window in enumerate(windows)
            if window.start <= now < window.start + window.duration
        ]

    def _announce(self, kind: str, index: int, **payload: Any) -> None:
        key = (kind, index)
        if key in self._announced:
            return
        self._announced.add(key)
        self._events.emit(kind, **payload)

    def scale_node_seconds(self, per_node_seconds: Mapping[str, float]) -> Mapping[str, float]:
        """Per-node durations with every active straggler's share inflated.

        Copy-on-write: when no straggler window is open (or none touches a
        node in the rollup) the caller's mapping is returned untouched.
        """
        scaled: Optional[Dict[str, float]] = None
        for index, window in self._active(self.stragglers):
            if window.node not in per_node_seconds:
                continue
            if scaled is None:
                scaled = dict(per_node_seconds)
            scaled[window.node] *= window.multiplier
            self._announce(
                "chaos.straggler",
                index,
                node=window.node,
                multiplier=window.multiplier,
                start=window.start,
                duration=window.duration,
            )
        return scaled if scaled is not None else per_node_seconds

    def active_stragglers(self) -> Tuple[Tuple[str, float], ...]:
        """``(node, multiplier)`` per open straggler window, declaration order."""
        return tuple(
            (window.node, window.multiplier) for _, window in self._active(self.stragglers)
        )

    # ---------------------------------------------------------- load shaping

    def ingest_factor(self) -> float:
        """Product of the open backpressure windows' factors (1.0 when none)."""
        factor = 1.0
        for index, window in self._active(self.backpressure):
            factor *= window.factor
            self._announce(
                "chaos.backpressure",
                index,
                factor=window.factor,
                start=window.start,
                duration=window.duration,
            )
        return factor

    def client_factor(self) -> float:
        """Product of the open burst windows' factors (1.0 when none)."""
        factor = 1.0
        for index, window in self._active(self.bursts):
            factor *= window.factor
            self._announce(
                "chaos.burst",
                index,
                factor=window.factor,
                start=window.start,
                duration=window.duration,
            )
        return factor

    # ------------------------------------------------------- partitions/retry

    def routing_penalty(self, runtime: "DatasetRuntime", key: Any) -> float:
        """Extra client latency for one point read under the current windows.

        Outside every partition window this is 0.0 (and any stale views are
        dropped — the partition healed).  Inside a window, the read routes
        through the frozen view first: a moved key costs a wasted hop plus a
        directory refresh and emits ``retry.routing_miss``; each read then
        risks simulated RPC timeouts, absorbed by the retry policy's capped
        exponential backoff (``retry.backoff`` per attempt).
        """
        window_entry = next(iter(self._active(self.partitions)), None)
        if window_entry is None:
            if self._stale:
                self._stale.clear()
            return 0.0
        index, window = window_entry
        self._announce(
            "chaos.partition",
            index,
            start=window.start,
            duration=window.duration,
        )
        name = runtime.spec.name
        snapshot = self._stale.get(name)
        if snapshot is None:
            snapshot = self._stale[name] = runtime.routing_snapshot()
        penalty = 0.0
        stale_partition = snapshot.partition_of(key)
        live_partition = runtime.partition_of_key(key)
        if stale_partition != live_partition:
            # Wasted hop to the old owner + a directory refresh round trip.
            penalty += 2.0 * self._cost.rpc_time(2)
            self._events.emit(
                "retry.routing_miss",
                dataset=name,
                stale_partition=stale_partition,
                live_partition=live_partition,
            )
            self._stale[name] = runtime.routing_snapshot()
        attempt = 1
        while (
            window.timeout_probability > 0.0
            and attempt <= self.retry.max_attempts
            and self.rng.random() < window.timeout_probability
        ):
            delay = self.retry.delay(attempt)
            penalty += delay + self._cost.rpc_time(2)
            self._events.emit(
                "retry.backoff", dataset=name, attempt=attempt, delay_seconds=delay
            )
            attempt += 1
        return penalty

    # ---------------------------------------------------------------- crashes

    def due_crash_sites(self) -> List[str]:
        """Consume every crash plan the clock has passed; arm their sites.

        Each consumed plan emits ``chaos.crash`` and is removed, so a plan
        kills exactly one rebalance.
        """
        now = self._clock.now
        due = [plan for plan in self.crashes if plan.after_seconds <= now]
        if not due:
            return []
        self.crashes = [plan for plan in self.crashes if plan.after_seconds > now]
        sites = []
        for plan in due:
            sites.append(plan.site)
            self._events.emit("chaos.crash", site=plan.site, at=now)
        return sites

    def on_fault(self, site: str) -> None:
        """Record that an armed crash actually fired mid-rebalance."""
        self.faults.append((site, self._clock.now))

    def charge_recovery(self, outcomes: Sequence[Any]) -> None:
        """Advance the clock for the recovery round trips and mark the time."""
        self._clock.advance(self._cost.rpc_time(2) * (1 + len(outcomes)))
        self._recovered_at = self._clock.now

    def recovery_seconds(self) -> Optional[float]:
        """Simulated seconds from the last fired fault to the last recovery."""
        if not self.faults or self._recovered_at is None:
            return None
        fault_at = self.faults[-1][1]
        if self._recovered_at < fault_at:
            return None
        return self._recovered_at - fault_at

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"ChaosEngine(stragglers={len(self.stragglers)}, "
            f"partitions={len(self.partitions)}, crashes={len(self.crashes)}, "
            f"faults={len(self.faults)})"
        )
