"""Simulated-time tracing: spans, timeline gauges, and Perfetto export.

The observability layer of the reproduction.  A run traced with
:meth:`Database.start_trace` (or a scenario's ``[trace]`` section) produces:

* a **span tree** on the simulated clock — session, workload phases, op
  batches, rebalance protocol phases down to per-bucket moves, and the
  autopilot decisions that triggered them (:mod:`repro.trace.spans`),
* **columnar time-series** sampled on a simulated-time grid — per-node
  bytes, per-bucket read/write heat, in-flight rebalance progress, rolling
  write p99 (:mod:`repro.trace.timeline`),
* a **Chrome trace-event JSON** export loadable in Perfetto /
  ``chrome://tracing``, plus terminal renderings
  (:mod:`repro.trace.export`).

Tracing is strictly opt-in: with no session attached the hot paths pay one
cached ``has_subscribers`` probe (or one ``is None`` check for the heat
hook) and emit nothing, so traced and untraced runs produce identical
:class:`~repro.metrics.MetricsSnapshot` documents — and the trace itself is
deterministic, byte-identical across runs and hash seeds.

See ``docs/OBSERVABILITY.md`` for the span model and Perfetto workflow.
"""

from .export import (
    chrome_trace_json,
    chrome_trace_payload,
    render_gantt,
    render_span_tree,
    timeline_csv,
)
from .session import TRACE_PAYLOAD_VERSION, TraceSession
from .spans import Span, Tracer
from .timeline import BucketHeat, TimelineRecorder, TimeSeries

__all__ = [
    "BucketHeat",
    "Span",
    "TRACE_PAYLOAD_VERSION",
    "TimeSeries",
    "TimelineRecorder",
    "TraceSession",
    "Tracer",
    "chrome_trace_json",
    "chrome_trace_payload",
    "render_gantt",
    "render_span_tree",
    "timeline_csv",
]
