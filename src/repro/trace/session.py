"""One tracing session: a tracer plus a timeline recorder, lifecycled together.

:meth:`Database.start_trace` constructs and attaches a
:class:`TraceSession`; closing the database (or calling :meth:`finish`)
closes every open span at the final clock reading, takes the closing gauge
sample, and detaches everything.  ``to_payload`` produces the JSON-safe
document that recordings embed and the export module renders.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, TYPE_CHECKING

from .spans import Span, Tracer
from .timeline import DEFAULT_INTERVAL_SECONDS, TimelineRecorder, TimeSeries

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..api.database import Database

__all__ = ["TRACE_PAYLOAD_VERSION", "TraceSession"]

#: Version of the embedded trace payload (bumped on breaking shape changes).
TRACE_PAYLOAD_VERSION = 1


class TraceSession:
    """A live tracing attachment on one :class:`Database` session."""

    def __init__(
        self,
        db: "Database",
        sample_interval_seconds: float = DEFAULT_INTERVAL_SECONDS,
        clock_anchored_rebalance: bool = False,
    ) -> None:
        self.db = db
        self.tracer = Tracer(db, clock_anchored_rebalance=clock_anchored_rebalance)
        self.recorder = TimelineRecorder(db, interval_seconds=sample_interval_seconds)
        self._finished = False

    def attach(self) -> "TraceSession":
        self.tracer.attach()
        self.recorder.attach()
        return self

    def finish(self) -> "TraceSession":
        """Idempotently close spans, take the final sample, and detach."""
        if not self._finished:
            self._finished = True
            self.tracer.finish()
            self.recorder.finish()
        return self

    @property
    def finished(self) -> bool:
        return self._finished

    @property
    def spans(self) -> List[Span]:
        return self.tracer.spans

    @property
    def series(self) -> List[TimeSeries]:
        return self.recorder.series

    def to_payload(
        self, scenario: Optional[str] = None, seed: Optional[int] = None
    ) -> Dict[str, Any]:
        """The JSON-safe trace document (spans + series + heat)."""
        timeline = self.recorder.to_payload()
        return {
            "version": TRACE_PAYLOAD_VERSION,
            "scenario": scenario,
            "seed": seed,
            "interval_seconds": timeline["interval_seconds"],
            "spans": self.tracer.to_payload(),
            "series": timeline["series"],
            "heat": timeline["heat"],
        }
