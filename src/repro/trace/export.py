"""Trace export: Chrome trace-event JSON and terminal renderings.

The exchange format for a traced run is a plain JSON-safe mapping (the
*trace payload*, built by :meth:`TraceSession.to_payload`) so recordings can
embed it and the CLI can re-render it without re-running anything.  This
module turns that payload into:

* **Chrome trace-event JSON** — the ``{"traceEvents": [...]}`` document
  Perfetto (https://ui.perfetto.dev) and ``chrome://tracing`` load directly.
  Spans become ``"ph": "X"`` complete events (timestamps in microseconds of
  simulated time), zero-duration marks become ``"ph": "i"`` instants, span
  categories map to named threads so workload, ops, rebalance, and autopilot
  activity sit on parallel tracks, and every time-series becomes a
  ``"ph": "C"`` counter track.  Serialization sorts keys and keeps event
  order stable, so the same run produces byte-identical output — trace files
  join the determinism gate.
* **Terminal views** — an indented span tree and a phase Gantt chart for
  ``python -m repro trace``.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Mapping, Optional, Tuple

__all__ = [
    "chrome_trace_json",
    "chrome_trace_payload",
    "render_gantt",
    "render_span_tree",
    "timeline_csv",
]

#: Category -> Perfetto thread id (tracks appear in this order).
_CATEGORY_TIDS = {
    "session": 0,
    "workload": 1,
    "ops": 2,
    "rebalance": 3,
    "autopilot": 4,
    "chaos": 5,
}
_OTHER_TID = 6

_SECONDS_TO_MICROS = 1_000_000.0


def chrome_trace_payload(trace: Mapping[str, Any]) -> Dict[str, Any]:
    """Build the Chrome trace-event document for one trace payload."""
    events: List[Dict[str, Any]] = [
        {
            "args": {"name": "repro simulated cluster"},
            "cat": "__metadata",
            "name": "process_name",
            "ph": "M",
            "pid": 0,
            "tid": 0,
            "ts": 0,
        }
    ]
    for category, tid in sorted(_CATEGORY_TIDS.items(), key=lambda item: item[1]):
        events.append(
            {
                "args": {"name": category},
                "cat": "__metadata",
                "name": "thread_name",
                "ph": "M",
                "pid": 0,
                "tid": tid,
                "ts": 0,
            }
        )
    for span in trace.get("spans", []):
        args = dict(span.get("attrs", {}))
        args["span_id"] = span["id"]
        if span.get("parent") is not None:
            args["parent_id"] = span["parent"]
        event: Dict[str, Any] = {
            "args": args,
            "cat": span["cat"],
            "name": span["name"],
            "pid": 0,
            "tid": _CATEGORY_TIDS.get(span["cat"], _OTHER_TID),
            "ts": span["start"] * _SECONDS_TO_MICROS,
        }
        if span["dur"] > 0:
            event["ph"] = "X"
            event["dur"] = span["dur"] * _SECONDS_TO_MICROS
        else:
            event["ph"] = "i"
            event["s"] = "t"
        events.append(event)
    for series in trace.get("series", []):
        name = series["name"]
        for t, value in zip(series["times"], series["values"], strict=True):
            events.append(
                {
                    "args": {"value": value},
                    "name": name,
                    "ph": "C",
                    "pid": 0,
                    "ts": t * _SECONDS_TO_MICROS,
                }
            )
    other_data: Dict[str, Any] = {"clock": "simulated"}
    if trace.get("scenario") is not None:
        other_data["scenario"] = trace["scenario"]
    if trace.get("seed") is not None:
        other_data["seed"] = trace["seed"]
    return {
        "displayTimeUnit": "ms",
        "otherData": other_data,
        "traceEvents": events,
    }


def chrome_trace_json(trace: Mapping[str, Any]) -> str:
    """The Chrome trace document as deterministic (byte-stable) JSON."""
    return json.dumps(chrome_trace_payload(trace), sort_keys=True, separators=(",", ":")) + "\n"


def timeline_csv(trace: Mapping[str, Any]) -> str:
    """The timeline series as wide CSV for spreadsheet analysis.

    One column per series (sorted by name) plus a leading
    ``simulated_seconds`` column; one row per sample instant (the sorted
    union of every series' times — a series that started later, e.g. a node
    provisioned mid-run, has empty cells before its first sample).  Numbers
    serialise through :func:`json.dumps` — the exact formatting rule of the
    Chrome export — so the same payload yields byte-identical CSV on every
    run and every ``PYTHONHASHSEED``.  Lines end with ``\\n``.
    """
    series_list = sorted(trace.get("series", []), key=lambda series: series["name"])
    names = [series["name"] for series in series_list]
    by_time: Dict[float, Dict[str, float]] = {}
    for series in series_list:
        for t, value in zip(series["times"], series["values"], strict=True):
            by_time.setdefault(float(t), {})[series["name"]] = value
    lines = [",".join(["simulated_seconds"] + [_csv_field(name) for name in names])]
    for t in sorted(by_time):
        row = by_time[t]
        cells = [json.dumps(t)]
        for name in names:
            value = row.get(name)
            cells.append("" if value is None else json.dumps(value))
        lines.append(",".join(cells))
    return "\n".join(lines) + "\n"


def _csv_field(text: str) -> str:
    """RFC-4180 quoting for header fields (series names may grow commas)."""
    if any(ch in text for ch in ',"\n'):
        return '"' + text.replace('"', '""') + '"'
    return text


# ------------------------------------------------------------------ terminal


def _span_forest(
    trace: Mapping[str, Any],
) -> Tuple[List[Dict[str, Any]], Dict[Optional[int], List[Dict[str, Any]]]]:
    """Roots and a parent-id -> children index, both in recorded order."""
    children: Dict[Optional[int], List[Dict[str, Any]]] = {}
    for span in trace.get("spans", []):
        children.setdefault(span.get("parent"), []).append(span)
    return children.get(None, []), children


def _attr_summary(span: Mapping[str, Any], limit: int = 4) -> str:
    parts = []
    for key in sorted(span.get("attrs", {})):
        parts.append(f"{key}={span['attrs'][key]}")
        if len(parts) >= limit:
            break
    return "  ".join(parts)


def render_span_tree(trace: Mapping[str, Any]) -> str:
    """An indented text rendering of the span tree."""
    roots, children = _span_forest(trace)
    lines: List[str] = []

    def walk(span: Dict[str, Any], depth: int) -> None:
        indent = "  " * depth
        label = f"{indent}{span['name']}"
        timing = f"{span['start']:>9.4f}s  +{span['dur']:.4f}s"
        summary = _attr_summary(span)
        lines.append(f"{label:<44} {timing}" + (f"  {summary}" if summary else ""))
        for child in children.get(span["id"], []):
            walk(child, depth + 1)

    for root in roots:
        walk(root, 0)
    if not lines:
        return "(no spans)"
    return "\n".join(lines)


def render_gantt(trace: Mapping[str, Any], width: int = 64, max_rows: int = 40) -> str:
    """A fixed-width Gantt of the phases and protocol spans.

    Rows are the structural spans — workload phases, autopilot brackets, and
    the rebalance protocol down to its per-dataset phases — so overlap
    between traffic and resizes is visible at a glance without one row per
    op batch.
    """
    roots, children = _span_forest(trace)
    rows: List[Dict[str, Any]] = []

    def collect(span: Dict[str, Any], depth: int) -> None:
        structural = depth == 1 or span["cat"] in ("rebalance", "autopilot")
        if structural and depth <= 3 and span["dur"] > 0:
            rows.append(span)
        for child in children.get(span["id"], []):
            collect(child, depth + 1)

    for root in roots:
        collect(root, 0)
    if not rows:
        return "(no phase spans)"
    t0 = min(span["start"] for span in rows)
    t1 = max(span["start"] + span["dur"] for span in rows)
    window = max(t1 - t0, 1e-12)
    scale = width / window
    lines = [f"{'':<28} {t0:.3f}s{'':{max(0, width - 14)}}{t1:.3f}s"]
    hidden = 0
    for span in rows:
        if len(lines) > max_rows:
            hidden += 1
            continue
        offset = int((span["start"] - t0) * scale)
        length = max(1, int(round(span["dur"] * scale)))
        length = min(length, width - offset) or 1
        name = span["name"][:28]
        bar = " " * offset + "█" * length
        lines.append(f"{name:<28} |{bar:<{width}}|")
    if hidden:
        lines.append(f"… +{hidden} more rows")
    return "\n".join(lines)
