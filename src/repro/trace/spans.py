"""Spans: the hierarchical simulated-time skeleton of a traced run.

A :class:`Tracer` subscribes to the session's event bus and turns the event
stream into a tree of :class:`Span` values on the *simulated* clock — the
same clock the metrics registry advances, so spans line up with every latency
sample the run recorded.  The tree nests the way the run nests:

* ``session`` → one ``workload/<phase>`` span per driver schedule phase →
  one ``ops/<verb>`` span per op batch (the batched pipeline's ``op.batch``
  events map one-to-one; the per-op pipeline's single-op events are
  aggregated into maximal same-verb runs, which is deterministic because the
  event stream is),
* ``rebalance`` → one ``rebalance/<dataset>`` span per dataset operation →
  one span per protocol phase → one ``move/<bucket>`` span per shipped
  bucket, plus zero-duration marks for commit/abort,
* ``autopilot/rebalance`` brackets a policy-triggered resize, and every
  evaluation/decision appears as a zero-duration mark carrying the policy
  verdict.

Because the simulator is run-to-completion (the clock only advances when the
cost model charges time), span timing is *reconstructed from event payloads*
rather than measured around callbacks: an op span ends at the clock reading
its event was observed at and starts one latency earlier; a rebalance phase
span's duration is the ``seconds`` its ``rebalance.phase`` event reports,
laid out sequentially from the dataset span's start; bucket moves are laid
out inside the data-movement phase proportional to their payload bytes.
Everything is derived from deterministic values, so the span list is
bit-identical across runs and hash seeds.

Under the interleaved engine (``concurrency = "interleaved"``, see
:mod:`repro.sim` and ``docs/CONCURRENCY.md``) that reconstruction is wrong:
the clock genuinely advances *during* the data-movement phase — concurrent
writes and foreground driver ops charge latency between bucket moves — so
laying phases out from protocol seconds would place move spans far before
the op spans they actually overlapped.  ``clock_anchored_rebalance=True``
switches the rebalance subtree to *clock-anchored* layout: a phase span
whose ``rebalance.phase`` event arrives after the clock moved past the
cursor spans the real window instead of the nominal seconds, each buffered
bucket move is anchored at the clock reading its ``rebalance.bucket_move``
event fired and extends to the next move's anchor (the last one to the end
of the phase), and the enclosing ``rebalance`` span closes at the real
clock rather than the report's summed protocol seconds.  Phases during
which the clock did not move (initialization, finalization, and every
phase of a coarse run-to-completion fallback) keep the legacy layout, so
anchored traces degrade gracefully to the protocol picture wherever no
interleaving happened.  The layout is still deterministic — it is derived
from the same deterministic clock readings the metrics registry records.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, TYPE_CHECKING

from ..common.events import Event, Subscription

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..api.database import Database

__all__ = ["Span", "Tracer"]

#: Span categories, doubling as Perfetto track assignments (see export).
CATEGORY_SESSION = "session"
CATEGORY_WORKLOAD = "workload"
CATEGORY_OPS = "ops"
CATEGORY_REBALANCE = "rebalance"
CATEGORY_AUTOPILOT = "autopilot"
CATEGORY_CHAOS = "chaos"


@dataclass
class Span:
    """One node of the span tree: a named simulated-time interval."""

    span_id: int
    parent_id: Optional[int]
    name: str
    category: str
    #: Simulated seconds; zero-duration spans are instant marks.
    start: float
    duration: float
    attributes: Dict[str, Any] = field(default_factory=dict)

    @property
    def end(self) -> float:
        return self.start + self.duration

    def to_payload(self) -> Dict[str, Any]:
        """The JSON-safe form embedded into recordings and trace files."""
        return {
            "id": self.span_id,
            "parent": self.parent_id,
            "name": self.name,
            "cat": self.category,
            "start": self.start,
            "dur": self.duration,
            "attrs": dict(self.attributes),
        }


@dataclass
class _DatasetRebalanceState:
    """Per-dataset cursor state while its protocol operation is in flight."""

    span: Span
    #: Where the next phase span begins (accumulated phase seconds).
    cursor: float
    #: Buffered ``rebalance.bucket_move`` payloads awaiting their phase span.
    pending_moves: List[Dict[str, Any]] = field(default_factory=list)


class _OpRun:
    """An in-progress aggregation of consecutive same-verb op samples."""

    __slots__ = ("op", "dataset", "concurrent", "parent_id", "start", "end", "count", "records")

    def __init__(
        self,
        op: str,
        dataset: Optional[str],
        concurrent: bool,
        parent_id: Optional[int],
        start: float,
        end: float,
        records: int,
    ) -> None:
        self.op = op
        self.dataset = dataset
        self.concurrent = concurrent
        self.parent_id = parent_id
        self.start = start
        self.end = end
        self.count = 1
        self.records = records

    def matches(self, op: str, dataset: Optional[str], concurrent: bool) -> bool:
        return self.op == op and self.dataset == dataset and self.concurrent == concurrent


class Tracer:
    """Builds the span tree of one session by listening to its event bus."""

    def __init__(self, db: "Database", *, clock_anchored_rebalance: bool = False) -> None:
        self.db = db
        self.clock_anchored_rebalance = clock_anchored_rebalance
        self.spans: List[Span] = []
        self._stack: List[Span] = []
        self._subscriptions: List[Subscription] = []
        self._next_id = 0
        self._run: Optional[_OpRun] = None
        self._datasets: Dict[str, _DatasetRebalanceState] = {}
        self._attached = False
        self._finished = False

    # ------------------------------------------------------------------ wiring

    def attach(self) -> "Tracer":
        """Subscribe to the bus and open the root ``session`` span."""
        if self._attached:
            return self
        self._attached = True
        root = self._open("session", CATEGORY_SESSION, self._now())
        root.attributes["nodes"] = self.db.num_nodes
        handlers = (
            ("trace.phase.start", self._on_phase_start),
            ("trace.phase.end", self._on_phase_end),
            ("trace.autopilot.evaluate", self._on_autopilot_evaluate),
            ("op.read", self._on_op),
            ("op.insert", self._on_op),
            ("op.update", self._on_op),
            ("op.delete", self._on_op),
            ("op.scan", self._on_op),
            ("op.query", self._on_op),
            ("op.batch", self._on_op_batch),
            ("rebalance.start", self._on_rebalance_start),
            ("rebalance.dataset.start", self._on_dataset_start),
            ("rebalance.bucket_move", self._on_bucket_move),
            ("rebalance.phase", self._on_rebalance_phase),
            ("rebalance.commit", self._on_commit),
            ("rebalance.abort", self._on_abort),
            ("rebalance.dataset.complete", self._on_dataset_complete),
            ("rebalance.complete", self._on_rebalance_complete),
            ("rebalance.error", self._on_rebalance_error),
            ("recovery.complete", self._on_recovery),
            ("autopilot.decision", self._on_autopilot_decision),
            ("autopilot.rebalance.start", self._on_autopilot_rebalance_start),
            ("autopilot.rebalance.complete", self._on_autopilot_rebalance_complete),
            ("chaos.*", self._on_chaos),
            ("database.close", self._on_database_close),
        )
        events = self.db.events
        for pattern, handler in handlers:
            self._subscriptions.append(events.on(pattern, handler))
        return self

    def finish(self) -> List[Span]:
        """Close every open span at the current clock and unsubscribe."""
        if self._finished:
            return self.spans
        self._finished = True
        self._flush_run()
        now = self._now()
        while self._stack:
            span = self._stack.pop()
            span.duration = max(0.0, now - span.start)
        for subscription in self._subscriptions:
            subscription.cancel()
        self._subscriptions = []
        return self.spans

    def to_payload(self) -> List[Dict[str, Any]]:
        return [span.to_payload() for span in self.spans]

    # --------------------------------------------------------------- plumbing

    def _now(self) -> float:
        return self.db.metrics.clock.now

    def _open(self, name: str, category: str, start: float) -> Span:
        span = Span(
            span_id=self._next_id,
            parent_id=self._stack[-1].span_id if self._stack else None,
            name=name,
            category=category,
            start=start,
            duration=0.0,
        )
        self._next_id += 1
        self.spans.append(span)
        self._stack.append(span)
        return span

    def _close(self, span: Span, duration: float) -> None:
        span.duration = max(0.0, duration)
        # Pop to (and including) the span; tolerates a missing matching open.
        while self._stack:
            popped = self._stack.pop()
            if popped is span:
                break
            popped.duration = max(0.0, span.start + span.duration - popped.start)

    def _top(self) -> Optional[Span]:
        return self._stack[-1] if self._stack else None

    def _leaf(
        self,
        name: str,
        category: str,
        start: float,
        duration: float,
        attributes: Dict[str, Any],
        parent_id: Optional[int] = None,
    ) -> Span:
        """Record a closed span without touching the open-span stack."""
        if parent_id is None:
            top = self._top()
            parent_id = top.span_id if top is not None else None
        span = Span(
            span_id=self._next_id,
            parent_id=parent_id,
            name=name,
            category=category,
            start=start,
            duration=max(0.0, duration),
            attributes=attributes,
        )
        self._next_id += 1
        self.spans.append(span)
        return span

    def _flush_run(self) -> None:
        run = self._run
        if run is None:
            return
        self._run = None
        attributes: Dict[str, Any] = {"count": run.count, "records": run.records}
        if run.dataset is not None:
            attributes["dataset"] = run.dataset
        if run.concurrent:
            attributes["concurrent"] = True
        self._leaf(
            f"ops/{run.op}",
            CATEGORY_OPS,
            run.start,
            run.end - run.start,
            attributes,
            parent_id=run.parent_id,
        )

    # ------------------------------------------------------------- op samples

    def _on_op(self, event: Event) -> None:
        # event name is "op.<verb>"; by the time this handler runs the
        # metrics registry (always subscribed first) has advanced the clock
        # past this sample's latency.
        op = event.name[3:]
        latency = float(event["latency_seconds"])
        records = int(event.get("records", 1))
        dataset = event.get("dataset")
        concurrent = bool(event.get("concurrent", False))
        end = self._now()
        run = self._run
        if run is not None and run.matches(op, dataset, concurrent):
            run.end = end
            run.count += 1
            run.records += records
            return
        self._flush_run()
        top = self._top()
        self._run = _OpRun(
            op=op,
            dataset=dataset,
            concurrent=concurrent,
            parent_id=top.span_id if top is not None else None,
            start=max(0.0, end - latency),
            end=end,
            records=records,
        )

    def _on_op_batch(self, event: Event) -> None:
        self._flush_run()
        latencies = event["latencies"]
        total = 0.0
        for value in latencies:
            total += value
        end = self._now()
        self._leaf(
            f"ops/{event['op']}",
            CATEGORY_OPS,
            max(0.0, end - total),
            total,
            {
                "count": int(event["count"]),
                "records": int(event["count"]) * int(event["records_per_op"]),
                "dataset": event["dataset"],
                "batched": True,
            },
        )

    # -------------------------------------------------------- workload phases

    def _on_phase_start(self, event: Event) -> None:
        self._flush_run()
        span = self._open(f"workload/{event['phase']}", CATEGORY_WORKLOAD, self._now())
        planned = event.get("ops")
        if planned is not None:
            span.attributes["planned_ops"] = int(planned)

    def _on_phase_end(self, event: Event) -> None:
        self._flush_run()
        name = f"workload/{event['phase']}"
        span = self._find_open(name)
        if span is None:
            return
        ops = event.get("ops")
        if ops is not None:
            span.attributes["ops"] = int(ops)
        self._close(span, self._now() - span.start)

    def _find_open(self, name: str) -> Optional[Span]:
        for span in reversed(self._stack):
            if span.name == name:
                return span
        return None

    # ----------------------------------------------------------- rebalancing

    def _on_rebalance_start(self, event: Event) -> None:
        self._flush_run()
        span = self._open("rebalance", CATEGORY_REBALANCE, self._now())
        span.attributes.update(
            strategy=event["strategy"],
            old_nodes=int(event["old_nodes"]),
            target_nodes=int(event["target_nodes"]),
        )

    def _on_dataset_start(self, event: Event) -> None:
        self._flush_run()
        dataset = event["dataset"]
        span = self._open(f"rebalance/{dataset}", CATEGORY_REBALANCE, self._now())
        span.attributes.update(dataset=dataset, rebalance_id=int(event["rebalance_id"]))
        self._datasets[dataset] = _DatasetRebalanceState(span=span, cursor=span.start)

    def _on_bucket_move(self, event: Event) -> None:
        state = self._datasets.get(event["dataset"])
        if state is not None:
            move = dict(event.payload)
            if self.clock_anchored_rebalance:
                # Anchor for clock-anchored layout; stripped before the move
                # span's attributes are built.
                move["_at"] = self._now()
            state.pending_moves.append(move)

    def _on_rebalance_phase(self, event: Event) -> None:
        self._flush_run()
        state = self._datasets.get(event["dataset"])
        if state is None:
            return
        seconds = float(event["seconds"])
        phase = event["phase"]
        now = self._now()
        # Clock-anchored: the phase event arriving after the clock moved past
        # the cursor means other work interleaved into this phase — span the
        # real window.  A phase the clock slept through keeps nominal seconds.
        anchored = self.clock_anchored_rebalance and now > state.cursor
        duration = now - state.cursor if anchored else seconds
        span = self._leaf(
            f"phase/{phase}",
            CATEGORY_REBALANCE,
            state.cursor,
            duration,
            {"phase": phase, "dataset": event["dataset"]},
            parent_id=state.span.span_id,
        )
        if phase == "data_movement" and state.pending_moves:
            self._layout_moves(state.pending_moves, span, anchored=anchored)
            state.pending_moves = []
        state.cursor += duration

    def _layout_moves(
        self, moves: List[Dict[str, Any]], phase_span: Span, *, anchored: bool = False
    ) -> None:
        """Lay buffered bucket moves across the data-movement phase span.

        Legacy layout: move events carry no timing of their own (the whole
        phase is charged as one block of simulated work), so each move gets a
        slice of the phase proportional to its payload bytes — a faithful
        picture of where the phase's time went, and deterministic because the
        move order and byte counts are.

        Clock-anchored layout (``anchored=True`` and every buffered move has
        an ``_at`` clock stamp): each move span starts at the clock reading
        its ``rebalance.bucket_move`` event fired and runs to the next move's
        anchor — the last to the end of the phase — so a move's span covers
        the concurrent writes and foreground ops that genuinely interleaved
        with it.
        """
        anchored = anchored and all("_at" in move for move in moves)
        weights = [max(0, int(move.get("payload_bytes", 0))) for move in moves]
        total = sum(weights)
        if total <= 0:
            weights = [1] * len(moves)
            total = len(moves)
        cursor = phase_span.start
        for index, (move, weight) in enumerate(zip(moves, weights, strict=True)):
            if anchored:
                cursor = float(move["_at"])
                next_edge = (
                    float(moves[index + 1]["_at"]) if index + 1 < len(moves) else phase_span.end
                )
                duration = max(0.0, next_edge - cursor)
            else:
                duration = phase_span.duration * (weight / total)
            attributes: Dict[str, Any] = {
                "bucket": move["bucket"],
                "source": move["source"],
                "destination": move["destination"],
            }
            if "records" in move:
                attributes["records"] = int(move["records"])
            if "payload_bytes" in move:
                attributes["payload_bytes"] = int(move["payload_bytes"])
            self._leaf(
                f"move/{move['bucket']}",
                CATEGORY_REBALANCE,
                cursor,
                duration,
                attributes,
                parent_id=phase_span.span_id,
            )
            cursor += duration

    def _on_commit(self, event: Event) -> None:
        state = self._datasets.get(event["dataset"])
        if state is None:
            return
        self._leaf(
            "commit",
            CATEGORY_REBALANCE,
            state.cursor,
            0.0,
            {"buckets_moved": int(event["buckets_moved"])},
            parent_id=state.span.span_id,
        )

    def _on_abort(self, event: Event) -> None:
        state = self._datasets.get(event["dataset"])
        if state is None:
            return
        self._leaf(
            "abort",
            CATEGORY_REBALANCE,
            state.cursor,
            0.0,
            {"reason": str(event["reason"])},
            parent_id=state.span.span_id,
        )

    def _on_dataset_complete(self, event: Event) -> None:
        self._flush_run()
        state = self._datasets.pop(event["dataset"], None)
        if state is None:
            return
        state.span.attributes["committed"] = bool(event["committed"])
        report = event.get("report")
        records_moved = getattr(report, "records_moved", None)
        if records_moved is not None:
            state.span.attributes["records_moved"] = int(records_moved)
        self._close(state.span, state.cursor - state.span.start)

    def _on_rebalance_complete(self, event: Event) -> None:
        self._flush_run()
        span = self._find_open("rebalance")
        if span is None:
            return
        span.attributes["new_nodes"] = int(event["new_nodes"])
        span.attributes["committed"] = bool(event["committed"])
        report = event.get("report")
        seconds = getattr(report, "simulated_seconds", None)
        bytes_shipped = getattr(report, "bytes_shipped", None)
        if bytes_shipped is not None:
            span.attributes["bytes_shipped"] = int(bytes_shipped)
        if self.clock_anchored_rebalance or seconds is None:
            # Interleaved runs advance the clock past the protocol's summed
            # segment seconds; closing at the report total would end the
            # parent before its clock-anchored children.
            duration = self._now() - span.start
        else:
            duration = float(seconds)
        self._close(span, duration)

    def _on_rebalance_error(self, event: Event) -> None:
        self._flush_run()
        # Abandon any per-dataset state from the failed operation.
        self._datasets.clear()
        span = self._find_open("rebalance")
        if span is None:
            return
        span.attributes["error"] = str(event["error"])
        self._close(span, self._now() - span.start)

    def _on_recovery(self, event: Event) -> None:
        self._flush_run()
        self._leaf(
            "recovery",
            CATEGORY_REBALANCE,
            self._now(),
            0.0,
            {"outcomes": len(event["outcomes"])},
        )

    # -------------------------------------------------------------- autopilot

    def _on_autopilot_evaluate(self, event: Event) -> None:
        self._flush_run()
        attributes = {"policy": event["policy"], "action": event["action"]}
        reason = event.get("reason")
        if reason:
            attributes["reason"] = str(reason)
        self._leaf("autopilot/evaluate", CATEGORY_AUTOPILOT, self._now(), 0.0, attributes)

    def _on_autopilot_decision(self, event: Event) -> None:
        self._flush_run()
        self._leaf(
            "autopilot/decision",
            CATEGORY_AUTOPILOT,
            self._now(),
            0.0,
            {
                "policy": event["policy"],
                "action": event["action"],
                "target_nodes": int(event["target_nodes"]),
                "reason": str(event["reason"]),
                "outcome": event["outcome"],
            },
        )

    def _on_autopilot_rebalance_start(self, event: Event) -> None:
        self._flush_run()
        span = self._open("autopilot/rebalance", CATEGORY_AUTOPILOT, self._now())
        span.attributes.update(
            action=event["action"],
            target_nodes=int(event["target_nodes"]),
            reason=str(event["reason"]),
        )

    def _on_autopilot_rebalance_complete(self, event: Event) -> None:
        self._flush_run()
        span = self._find_open("autopilot/rebalance")
        if span is None:
            return
        span.attributes["new_nodes"] = int(event["new_nodes"])
        span.attributes["committed"] = bool(event["committed"])
        self._close(span, self._now() - span.start)

    # ------------------------------------------------------------------ chaos

    def _on_chaos(self, event: Event) -> None:
        """One leaf per injected fault: window faults span their declared
        ``[start, start + duration)`` interval on the simulated clock; a
        crash is an instant mark at the moment it fired."""
        self._flush_run()
        kind = event.name[len("chaos."):]
        payload = dict(event.payload)
        if "start" in payload and "duration" in payload:
            start = float(payload.pop("start"))
            duration = float(payload.pop("duration"))
        else:  # chaos.crash
            start = self._now()
            duration = 0.0
        self._leaf(f"chaos/{kind}", CATEGORY_CHAOS, start, duration, payload)

    # ---------------------------------------------------------------- session

    def _on_database_close(self, event: Event) -> None:
        self.finish()
