"""Sampled time-series gauges and per-bucket heat for a traced run.

The :class:`TimelineRecorder` complements the span tree with the *state*
view of a run: on a configurable simulated-time interval it samples per-node
storage bytes, in-flight rebalance progress, a rolling write p99 (the delta
window of the registry's cumulative histograms), and the hottest bucket's
read/write heat into compact columnar :class:`TimeSeries`.

Heat is the one signal no existing event carries — op events are per-call,
not per-key — so the recorder installs a :class:`BucketHeat` tracker on the
cluster's ``heat`` hook.  The hot paths (`Dataset` reads, `DataFeed` writes)
pay a single ``is not None`` probe when tracing is off, the same bargain as
``EventBus.has_subscribers``; when a recorder is attached, each call credits
its key's *current* bucket, so heat follows the directory across splits and
moves.  The cumulative counters surface on
:class:`~repro.control.observation.ClusterObservation` for autopilot
policies (ROADMAP item 2).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple, TYPE_CHECKING

from ..common.events import Event, Subscription
from ..common.hashutil import hash_key
from ..metrics import PHASE_REBALANCE, PHASE_STEADY

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..api.database import Database
    from ..cluster.controller import SimulatedCluster

__all__ = ["BucketHeat", "TimeSeries", "TimelineRecorder"]

#: Default sampling interval in simulated seconds.
DEFAULT_INTERVAL_SECONDS = 0.25


class TimeSeries:
    """One named gauge as parallel ``times``/``values`` columns."""

    __slots__ = ("name", "times", "values")

    def __init__(self, name: str) -> None:
        self.name = name
        self.times: List[float] = []
        self.values: List[float] = []

    def append(self, t: float, value: float) -> None:
        self.times.append(t)
        self.values.append(float(value))

    def __len__(self) -> int:
        return len(self.times)

    def to_payload(self) -> Dict[str, Any]:
        return {"name": self.name, "times": list(self.times), "values": list(self.values)}

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"TimeSeries({self.name!r}, points={len(self.times)})"


class BucketHeat:
    """Cumulative per-(dataset, bucket) read/write op counts.

    Keys are credited to the bucket that currently owns them (the live
    directory), so after a split or move new traffic heats the new owner.
    Under modulo routing (the Hashing baseline) the partition id stands in
    for the bucket label.
    """

    def __init__(self, cluster: "SimulatedCluster") -> None:
        self._cluster = cluster
        self._reads: Dict[Tuple[str, str], int] = {}
        self._writes: Dict[Tuple[str, str], int] = {}

    # ------------------------------------------------------------- recording

    def record_read(self, dataset: str, key: Any) -> None:
        """Credit one read of ``key`` (called from the `Dataset` verbs)."""
        self._record(self._reads, dataset, hash_key(key))

    def record_write(self, dataset: str, hashed: int) -> None:
        """Credit one written row by its already-computed key hash."""
        self._record(self._writes, dataset, hashed)

    def _record(self, counters: Dict[Tuple[str, str], int], dataset: str, hashed: int) -> None:
        label = self._bucket_label(dataset, hashed)
        if label is None:
            return
        bucket_key = (dataset, label)
        counters[bucket_key] = counters.get(bucket_key, 0) + 1

    def _bucket_label(self, dataset: str, hashed: int) -> Optional[str]:
        runtime = self._cluster.cc.datasets.get(dataset)
        if runtime is None:
            return None
        if runtime.routing_mode == "directory" and runtime.global_directory is not None:
            return runtime.global_directory.lookup_hash(hashed)[0].label
        if not runtime.partitions:
            return None
        return f"p{hashed % len(runtime.partitions)}"

    # --------------------------------------------------------------- queries

    def read_heat(self) -> Tuple[Tuple[str, str, int], ...]:
        """``(dataset, bucket, reads)`` sorted by (dataset, bucket)."""
        return tuple((ds, bucket, count) for (ds, bucket), count in sorted(self._reads.items()))

    def write_heat(self) -> Tuple[Tuple[str, str, int], ...]:
        """``(dataset, bucket, writes)`` sorted by (dataset, bucket)."""
        return tuple((ds, bucket, count) for (ds, bucket), count in sorted(self._writes.items()))

    def max_read(self) -> int:
        return max(self._reads.values(), default=0)

    def max_write(self) -> int:
        return max(self._writes.values(), default=0)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"BucketHeat(reads={len(self._reads)}, writes={len(self._writes)})"


class TimelineRecorder:
    """Samples gauges into columnar series on a simulated-time grid.

    Sampling is driven by the op event stream: each event is a chance to
    notice the clock crossed the next grid boundary (the clock only moves
    when work is charged, so there is nothing to wake up for in between).
    Rebalance start/completion force an off-grid sample so node-set and
    in-flight edges are never missed.  Every sample also publishes a
    ``trace.sample`` event (when anyone listens) carrying the values.
    """

    def __init__(self, db: "Database", interval_seconds: float = DEFAULT_INTERVAL_SECONDS) -> None:
        if interval_seconds <= 0:
            raise ValueError("interval_seconds must be positive")
        self.db = db
        self.interval_seconds = float(interval_seconds)
        self.heat = BucketHeat(db.cluster)
        self._series: Dict[str, TimeSeries] = {}
        self._subscriptions: List[Subscription] = []
        self._next_at = 0.0
        self._moves = 0
        self._write_prev: Optional[Tuple] = None
        self._attached = False
        self._finished = False

    # ------------------------------------------------------------------ wiring

    def attach(self) -> "TimelineRecorder":
        """Install the heat hook, subscribe, and take the first sample."""
        if self._attached:
            return self
        self._attached = True
        cluster = self.db.cluster
        if cluster.heat is None:
            cluster.heat = self.heat
        events = self.db.events
        self._subscriptions = [
            events.on("op.*", self._on_tick),
            events.on("rebalance.bucket_move", self._on_bucket_move),
            events.on("rebalance.start", self._on_rebalance_edge),
            events.on("rebalance.complete", self._on_rebalance_edge),
        ]
        now = self.db.metrics.clock.now
        self._next_at = now + self.interval_seconds
        self._sample(now)
        return self

    def finish(self) -> Dict[str, TimeSeries]:
        """Take a closing sample, unsubscribe, and uninstall the heat hook."""
        if self._finished:
            return self._series
        self._finished = True
        self._sample(self.db.metrics.clock.now)
        for subscription in self._subscriptions:
            subscription.cancel()
        self._subscriptions = []
        if self.db.cluster.heat is self.heat:
            self.db.cluster.heat = None
        return self._series

    # -------------------------------------------------------------- sampling

    def _on_tick(self, event: Event) -> None:
        now = self.db.metrics.clock.now
        if now >= self._next_at:
            while self._next_at <= now:
                self._next_at += self.interval_seconds
            self._sample(now)

    def _on_bucket_move(self, event: Event) -> None:
        self._moves += 1

    def _on_rebalance_edge(self, event: Event) -> None:
        self._sample(self.db.metrics.clock.now)

    def _sample(self, now: float) -> None:
        metrics = self.db.metrics
        values: Dict[str, float] = {}
        for node_id, size in sorted(self.db.cluster.storage_per_node().items()):
            values[f"node.bytes.{node_id}"] = float(size)
        values["rebalance.in_flight"] = float(metrics.gauge_value("rebalance.in_flight"))
        values["rebalance.buckets_moved"] = float(self._moves)
        values["write.p99.rolling"] = self._rolling_write_p99()
        values["heat.read.max"] = float(self.heat.max_read())
        values["heat.write.max"] = float(self.heat.max_write())
        chaos = self.db.cluster.chaos
        if chaos is not None:
            # Chaos series exist only on chaos-armed runs, so chaos-free
            # recordings (and their golden trace payloads) are untouched.
            values["chaos.stragglers.active"] = float(len(chaos.active_stragglers()))
            values["retry.routing_miss"] = float(metrics.counter_value("retry.routing_miss"))
            values["retry.backoff"] = float(metrics.counter_value("retry.backoff"))
        for name, value in values.items():
            series = self._series.get(name)
            if series is None:
                series = self._series[name] = TimeSeries(name)
            series.append(now, value)
        events = self.db.events
        if events.has_subscribers("trace.sample"):
            events.emit("trace.sample", simulated_seconds=now, values=values)

    def _rolling_write_p99(self) -> float:
        """p99 of the write samples recorded since the previous sample."""
        current = self.db.metrics.write_latency(PHASE_STEADY)
        current.merge(self.db.metrics.write_latency(PHASE_REBALANCE))
        window = current.since(self._write_prev)
        self._write_prev = current.snapshot()
        return window.percentile(0.99) if window.count else 0.0

    # ----------------------------------------------------------------- output

    @property
    def series(self) -> List[TimeSeries]:
        """The recorded series, sorted by name."""
        return [self._series[name] for name in sorted(self._series)]

    def to_payload(self) -> Dict[str, Any]:
        """The JSON-safe form embedded into recordings and trace files."""
        return {
            "interval_seconds": self.interval_seconds,
            "series": [series.to_payload() for series in self.series],
            "heat": {
                "read": [list(entry) for entry in self.heat.read_heat()],
                "write": [list(entry) for entry in self.heat.write_heat()],
            },
        }
