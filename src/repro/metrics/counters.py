"""Monotonic counters and last-value gauges.

Deliberately tiny: the simulator is single-threaded, so these are plain
numbers with a metrics-shaped API (``increment`` / ``set``) and comparable
snapshots for the determinism tests.
"""

from __future__ import annotations

from typing import Optional, Union

Number = Union[int, float]


class Counter:
    """A monotonically increasing count (ops executed, records ingested...)."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: Number = 0

    def increment(self, amount: Number = 1) -> Number:
        if amount < 0:
            raise ValueError("counters only go up; use a Gauge for level values")
        self.value += amount
        return self.value

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Counter({self.name!r}, {self.value})"


class Gauge:
    """A last-value-wins level (current cluster size, in-flight phase...)."""

    def __init__(self, name: str, value: Optional[Number] = None) -> None:
        self.name = name
        self.value: Optional[Number] = value

    def set(self, value: Number) -> None:
        self.value = value

    def add(self, delta: Number) -> None:
        self.value = (self.value or 0) + delta

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Gauge({self.name!r}, {self.value})"
