"""Telemetry: latency histograms, counters/gauges, and the metrics registry.

The registry subscribes to the cluster event bus and tags every operation
sample with the cluster phase in flight (``steady`` vs ``rebalance``), so
"p99 write latency during a rehash" is a first-class metric.  See
:mod:`repro.metrics.registry` for the full story.
"""

from .counters import Counter, Gauge
from .histogram import LatencyHistogram, SUMMARY_PERCENTILES
from .registry import (
    MetricsRegistry,
    MetricsSnapshot,
    OP_NAMES,
    PHASE_REBALANCE,
    PHASE_STEADY,
    WRITE_OPS,
)

__all__ = [
    "Counter",
    "Gauge",
    "LatencyHistogram",
    "MetricsRegistry",
    "MetricsSnapshot",
    "OP_NAMES",
    "PHASE_REBALANCE",
    "PHASE_STEADY",
    "SUMMARY_PERCENTILES",
    "WRITE_OPS",
]
