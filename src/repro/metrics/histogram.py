"""Fixed-bucket log-scale latency histograms.

Telemetry needs tail percentiles (p95/p99) over millions of samples without
keeping the samples.  A :class:`LatencyHistogram` buckets values on a
geometric grid (each bucket's upper edge is ``growth`` times the previous
one), so memory is a few hundred integers regardless of sample count and a
percentile is never off by more than one bucket width — the same trade
HdrHistogram and Prometheus histograms make.

Percentile queries return the upper edge of the bucket containing the
requested rank, which makes them *exact* when the recorded values sit on
bucket edges (the property the unit tests pin down) and conservative (never
under-reporting) otherwise.
"""

from __future__ import annotations

from math import log
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

#: Default grid: 1 microsecond to ~18 minutes in 31 half-decade-ish steps.
DEFAULT_MIN_LATENCY = 1e-6
DEFAULT_GROWTH = 2.0
DEFAULT_BUCKETS = 30

#: The percentiles reported by :meth:`LatencyHistogram.summary`.
SUMMARY_PERCENTILES = (0.50, 0.95, 0.99)


class LatencyHistogram:
    """A histogram over non-negative latencies (seconds) with log-scale buckets.

    Bucket ``i`` (for ``0 <= i < buckets``) holds values in
    ``(min_latency * growth**(i-1), min_latency * growth**i]``; bucket 0 also
    absorbs everything at or below ``min_latency``, and one extra overflow
    bucket holds values beyond the last edge (reported as the exact observed
    maximum).
    """

    def __init__(
        self,
        min_latency: float = DEFAULT_MIN_LATENCY,
        growth: float = DEFAULT_GROWTH,
        buckets: int = DEFAULT_BUCKETS,
    ) -> None:
        if min_latency <= 0:
            raise ValueError("min_latency must be positive")
        if growth <= 1.0:
            raise ValueError("growth must be greater than 1")
        if buckets < 1:
            raise ValueError("need at least one bucket")
        self.min_latency = min_latency
        self.growth = growth
        #: Upper edges of the regular buckets (ascending).
        self.upper_edges: List[float] = [
            min_latency * growth**index for index in range(buckets)
        ]
        #: Counts per regular bucket plus one trailing overflow bucket.
        self.counts: List[int] = [0] * (buckets + 1)
        self.count = 0
        self.total = 0.0
        self.min_value: Optional[float] = None
        self.max_value: Optional[float] = None
        # Precomputed constants for the O(1) log-index (see _bucket_index).
        self._log_min = log(min_latency)
        self._inv_log_growth = 1.0 / log(growth)
        self._top_edge = self.upper_edges[-1]

    # ------------------------------------------------------------- recording

    def _bucket_index(self, value: float) -> int:
        """Index of the bucket that counts ``value`` — O(1), bisect-exact.

        A log estimate lands within a bucket of the right answer; the
        neighbour checks then settle float round-off against the actual
        edges, so the result always equals ``bisect_left(upper_edges,
        value)`` (the determinism tests compare snapshots bit-for-bit with
        histograms filled the old way).
        """
        edges = self.upper_edges
        if value <= self.min_latency:
            return 0
        if value > self._top_edge:
            return len(edges)
        index = int((log(value) - self._log_min) * self._inv_log_growth)
        if index < 0:
            index = 0
        elif index >= len(edges):
            index = len(edges) - 1
        while index > 0 and edges[index - 1] >= value:
            index -= 1
        while edges[index] < value:
            index += 1
        return index

    def record(self, value: float, count: int = 1) -> None:
        """Record ``count`` observations of ``value`` seconds."""
        if value < 0:
            raise ValueError("latencies cannot be negative")
        if count < 1:
            raise ValueError("count must be at least 1")
        self.counts[self._bucket_index(value)] += count
        self.count += count
        self.total += value * count
        if self.min_value is None or value < self.min_value:
            self.min_value = value
        if self.max_value is None or value > self.max_value:
            self.max_value = value

    def record_many(self, values: Iterable[float]) -> None:
        """Record a batch of single observations, in order.

        Equivalent to calling :meth:`record` per value — same counts, same
        float-accumulation order for ``total``, same min/max — with the
        per-call validation and attribute traffic hoisted out of the loop.
        The whole batch is validated up front, so a bad value rejects the
        batch without mutating any state (``record`` likewise validates
        before touching its counters).
        """
        batch = values if isinstance(values, list) else list(values)
        if batch and min(batch) < 0:
            raise ValueError("latencies cannot be negative")
        counts = self.counts
        bucket_index = self._bucket_index
        total = self.total
        lo = self.min_value
        hi = self.max_value
        for value in batch:
            counts[bucket_index(value)] += 1
            total += value
            if lo is None or value < lo:
                lo = value
            if hi is None or value > hi:
                hi = value
        self.count += len(batch)
        self.total = total
        self.min_value = lo
        self.max_value = hi

    def merge(self, other: "LatencyHistogram") -> None:
        """Fold another histogram with the same bucket grid into this one."""
        if other.upper_edges != self.upper_edges:
            raise ValueError("cannot merge histograms with different bucket grids")
        for index, count in enumerate(other.counts):
            self.counts[index] += count
        self.count += other.count
        self.total += other.total
        for bound in (other.min_value,):
            if bound is not None and (self.min_value is None or bound < self.min_value):
                self.min_value = bound
        for bound in (other.max_value,):
            if bound is not None and (self.max_value is None or bound > self.max_value):
                self.max_value = bound

    # --------------------------------------------------------------- queries

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, quantile: float) -> float:
        """Latency at ``quantile`` (0 < q <= 1): the containing bucket's upper
        edge, or the exact observed maximum for the overflow bucket."""
        if not 0.0 < quantile <= 1.0:
            raise ValueError("quantile must be in (0, 1]")
        if not self.count:
            return 0.0
        # Rank of the requested sample, 1-based (nearest-rank definition).
        rank = max(1, -int(-quantile * self.count // 1))
        cumulative = 0
        for index, count in enumerate(self.counts):
            cumulative += count
            if cumulative >= rank:
                if index < len(self.upper_edges):
                    return self.upper_edges[index]
                return float(self.max_value)
        return float(self.max_value)  # pragma: no cover - defensive

    def summary(self) -> Dict[str, float]:
        """The fixed summary row: count, mean, p50/p95/p99, and exact max."""
        row: Dict[str, float] = {"count": float(self.count), "mean": self.mean}
        for quantile in SUMMARY_PERCENTILES:
            row[f"p{int(quantile * 100)}"] = self.percentile(quantile)
        row["max"] = float(self.max_value) if self.max_value is not None else 0.0
        return row

    def snapshot(self) -> Tuple:
        """A hashable, comparable frozen view (used by determinism tests)."""
        return (
            tuple(self.counts),
            self.count,
            self.total,
            self.min_value,
            self.max_value,
        )

    @classmethod
    def from_snapshot(
        cls,
        snap: Tuple,
        min_latency: float = DEFAULT_MIN_LATENCY,
        growth: float = DEFAULT_GROWTH,
    ) -> "LatencyHistogram":
        """Rebuild a histogram from a :meth:`snapshot` tuple.

        The snapshot does not carry its grid parameters, so callers pass the
        grid the histogram was built with (every registry histogram uses the
        defaults).  Lets persisted :class:`~repro.metrics.MetricsSnapshot`
        documents answer percentile queries offline — e.g. the scenario CLI's
        ``inspect`` subcommand summarising a recording.
        """
        counts, count, total, min_value, max_value = snap
        if len(counts) < 2:
            raise ValueError("snapshot has no bucket counts")
        histogram = cls(min_latency, growth, len(counts) - 1)
        histogram.counts = list(counts)
        histogram.count = count
        histogram.total = total
        histogram.min_value = min_value
        histogram.max_value = max_value
        return histogram

    def since(self, earlier: Optional[Tuple]) -> "LatencyHistogram":
        """The samples recorded after ``earlier`` (a past :meth:`snapshot` of
        *this* histogram), as a new histogram on the same grid.

        The delta's ``min_value``/``max_value`` keep the cumulative bounds
        (the extremes of just the newer samples are not recoverable from
        bucket counts), so its percentiles stay conservative.
        """
        delta = LatencyHistogram(self.min_latency, self.growth, len(self.upper_edges))
        if earlier is None:
            earlier_counts: Sequence[int] = (0,) * len(self.counts)
            earlier_count = 0
            earlier_total = 0.0
        else:
            earlier_counts, earlier_count, earlier_total = earlier[0], earlier[1], earlier[2]
            if len(earlier_counts) != len(self.counts):
                raise ValueError("snapshot comes from a different bucket grid")
        delta.counts = [now - past for now, past in zip(self.counts, earlier_counts, strict=True)]
        if any(count < 0 for count in delta.counts):
            raise ValueError("snapshot is not from this histogram's past")
        delta.count = self.count - earlier_count
        delta.total = self.total - earlier_total
        delta.min_value = self.min_value
        delta.max_value = self.max_value
        return delta

    def nonzero_buckets(self) -> Sequence[Tuple[float, int]]:
        """(upper_edge, count) for every populated bucket, for debugging."""
        populated = []
        for index, count in enumerate(self.counts):
            if count:
                edge = (
                    self.upper_edges[index]
                    if index < len(self.upper_edges)
                    else float("inf")
                )
                populated.append((edge, count))
        return populated

    def __len__(self) -> int:
        return self.count

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"LatencyHistogram(count={self.count}, p99={self.percentile(0.99):.6f}, "
            f"max={self.max_value})"
        )
