"""The metrics registry: phase-aware telemetry over the cluster event bus.

A :class:`MetricsRegistry` owns every counter, gauge, and latency histogram
of one :class:`~repro.api.database.Database` session.  It subscribes to the
cluster's :class:`~repro.common.events.EventBus` (see
:mod:`repro.api.events`), so telemetry is driven by the same lifecycle events
client code can observe:

* ``op.*`` events (emitted by the instrumented dataset verbs) become latency
  samples and throughput counters;
* ``rebalance.start`` / ``rebalance.complete`` / ``rebalance.error`` flip the
  registry's *cluster phase* between ``"steady"`` and ``"rebalance"``, and
  every op sample is tagged with the phase in flight when it was recorded —
  which is how "write latency during a rehash" (the paper's Figure 7c story)
  becomes a first-class metric instead of an experiment-specific hack;
* ``ingest.complete``, ``node.provision`` / ``node.decommission``, and the
  ``dataset.*`` events keep cluster-level counters and gauges current.

Time is *simulated* time: the registry advances its own
:class:`~repro.common.clock.SimulatedClock` by each sample's latency, so
throughput numbers are deterministic and comparable across runs.
"""

from __future__ import annotations

import json

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..common.clock import SimulatedClock
from ..common.events import Event, EventBus, Subscription
from ..common.reporting import format_table
from .counters import Counter, Gauge
from .histogram import LatencyHistogram

#: The two cluster phases an op sample can be tagged with.
PHASE_STEADY = "steady"
PHASE_REBALANCE = "rebalance"

#: Operation names carried by ``op.*`` events, in report order.
OP_NAMES = ("read", "insert", "update", "delete", "scan", "query")

#: Ops counted as writes by :meth:`MetricsRegistry.write_latency`.
WRITE_OPS = ("insert", "update", "delete")


@dataclass
class MetricsSnapshot:
    """A frozen, comparable view of a registry (the determinism contract).

    Two runs with the same seed must produce *equal* snapshots; the
    determinism tests compare these directly.
    """

    phase: str
    simulated_seconds: float
    counters: Dict[str, float] = field(default_factory=dict)
    gauges: Dict[str, Optional[float]] = field(default_factory=dict)
    #: ``"op[phase]"`` -> histogram snapshot tuple.
    histograms: Dict[str, Tuple] = field(default_factory=dict)

    def histogram_count(self, op: str, phase: str) -> int:
        snap = self.histograms.get(f"{op}[{phase}]")
        return snap[1] if snap is not None else 0

    # ------------------------------------------------------------ persistence

    def to_json(self, indent: Optional[int] = None) -> str:
        """Serialise the snapshot to JSON (a stable, sorted document).

        The round trip is lossless: ``MetricsSnapshot.from_json(s.to_json())``
        compares *equal* to ``s``, so bench runs and the autopilot can persist
        telemetry to disk and replay it later without breaking the
        determinism contract.
        """
        return json.dumps(
            {
                "version": 1,
                "phase": self.phase,
                "simulated_seconds": self.simulated_seconds,
                "counters": self.counters,
                "gauges": self.gauges,
                # Histogram snapshots are (counts, count, total, min, max)
                # tuples; JSON has no tuples, so they travel as lists and
                # from_json restores the tuple shape.
                "histograms": {
                    key: [list(snap[0]), *snap[1:]] for key, snap in self.histograms.items()
                },
            },
            sort_keys=True,
            indent=indent,
        )

    @classmethod
    def from_json(cls, text: str) -> "MetricsSnapshot":
        """Rebuild a snapshot serialised by :meth:`to_json`."""
        data = json.loads(text)
        version = data.get("version", 1)
        if version != 1:
            raise ValueError(f"unsupported MetricsSnapshot JSON version {version!r}")
        return cls(
            phase=data["phase"],
            simulated_seconds=data["simulated_seconds"],
            counters=dict(data.get("counters", {})),
            gauges=dict(data.get("gauges", {})),
            histograms={
                key: (tuple(value[0]), *value[1:])
                for key, value in data.get("histograms", {}).items()
            },
        )


class MetricsRegistry:
    """All telemetry of one database session, fed by the event bus."""

    def __init__(self, clock: Optional[SimulatedClock] = None) -> None:
        self.clock = clock or SimulatedClock()
        self.phase = PHASE_STEADY
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[Tuple[str, str], LatencyHistogram] = {}
        self._subscriptions: List[Subscription] = []
        self._bus: Optional[EventBus] = None
        #: Clock reading when the in-flight rebalance started; op samples
        #: recorded after this point overlap the rebalance, so its duration
        #: is only advanced for the remainder (see ``_on_rebalance_complete``).
        self._rebalance_started_at = 0.0

    # ------------------------------------------------------------------ wiring

    def attach(self, bus: EventBus) -> "MetricsRegistry":
        """Subscribe to ``bus``; idempotent per bus, returns ``self``."""
        if self._bus is bus:
            return self
        self.detach()
        self._bus = bus
        self._subscriptions = [
            bus.on("op.*", self._on_op),
            bus.on("op.batch", self._on_op_batch),
            bus.on("rebalance.start", self._on_rebalance_start),
            bus.on("rebalance.complete", self._on_rebalance_complete),
            bus.on("rebalance.error", self._on_rebalance_error),
            bus.on("rebalance.phase", self._on_rebalance_phase),
            bus.on("ingest.complete", self._on_ingest_complete),
            bus.on("node.*", self._on_node_change),
            bus.on("dataset.create", self._on_dataset_create),
            bus.on("dataset.drop", self._on_dataset_drop),
            bus.on("autopilot.*", self._on_autopilot),
            bus.on("chaos.*", self._on_chaos),
            bus.on("retry.*", self._on_retry),
        ]
        return self

    def detach(self) -> None:
        for subscription in self._subscriptions:
            subscription.cancel()
        self._subscriptions = []
        self._bus = None

    @property
    def in_rebalance(self) -> bool:
        return self.phase == PHASE_REBALANCE

    # -------------------------------------------------------------- primitives

    def counter(self, name: str) -> Counter:
        if name not in self._counters:
            self._counters[name] = Counter(name)
        return self._counters[name]

    def gauge(self, name: str) -> Gauge:
        if name not in self._gauges:
            self._gauges[name] = Gauge(name)
        return self._gauges[name]

    def histogram(self, op: str, phase: Optional[str] = None) -> LatencyHistogram:
        key = (op, phase or self.phase)
        if key not in self._histograms:
            self._histograms[key] = LatencyHistogram()
        return self._histograms[key]

    # ------------------------------------------------------------ observation

    def observe_op(
        self,
        op: str,
        latency_seconds: float,
        records: int = 1,
        dataset: Optional[str] = None,
    ) -> None:
        """Record one operation sample, tagged with the current cluster phase.

        Normally invoked via ``op.*`` events from the instrumented dataset
        verbs, but callable directly by custom drivers.
        """
        phase = self.phase
        self.histogram(op, phase).record(latency_seconds)
        self.counter("ops.total").increment()
        self.counter(f"ops.{op}").increment()
        self.counter(f"ops.{op}.{phase}").increment()
        if records:
            self.counter(f"records.{op}").increment(records)
        if dataset is not None:
            self.counter(f"ops.dataset.{dataset}").increment()
        self.clock.advance(latency_seconds)

    def observe_op_batch(
        self,
        op: str,
        latencies: Sequence[float],
        records_per_op: int = 1,
        dataset: Optional[str] = None,
    ) -> None:
        """Record a batch of same-op samples sharing the current phase.

        Produces *exactly* the state a loop of :meth:`observe_op` calls
        would — the histogram records the samples in order, the counters
        receive the same totals, and the clock advances through the same
        float-addition sequence — while paying the per-sample overhead
        (counter lookups, event dispatch) once per batch.  This is what the
        ``op.batch`` events of the batched workload driver feed.
        """
        if not latencies:
            return
        n = len(latencies)
        phase = self.phase
        self.histogram(op, phase).record_many(latencies)
        self.counter("ops.total").increment(n)
        self.counter(f"ops.{op}").increment(n)
        self.counter(f"ops.{op}.{phase}").increment(n)
        if records_per_op:
            self.counter(f"records.{op}").increment(records_per_op * n)
        if dataset is not None:
            self.counter(f"ops.dataset.{dataset}").increment(n)
        self.clock.advance_many(latencies)

    # ---------------------------------------------------------- event handlers

    def _on_op(self, event: Event) -> None:
        if event.name == "op.batch":
            return  # handled by _on_op_batch (also matched by "op.*")
        # "op.read" -> "read"
        op = event.name.split(".", 1)[1]
        self.observe_op(
            op,
            float(event.get("latency_seconds", 0.0)),
            records=int(event.get("records", 1)),
            dataset=event.get("dataset"),
        )

    def _on_op_batch(self, event: Event) -> None:
        self.observe_op_batch(
            event["op"],
            event["latencies"],
            records_per_op=int(event.get("records_per_op", 1)),
            dataset=event.get("dataset"),
        )

    def _on_rebalance_start(self, event: Event) -> None:
        self.phase = PHASE_REBALANCE
        self.counter("rebalance.started").increment()
        self.gauge("rebalance.in_flight").set(1)
        self._rebalance_started_at = self.clock.now

    def _on_rebalance_complete(self, event: Event) -> None:
        self.phase = PHASE_STEADY
        self.counter("rebalance.completed").increment()
        self.gauge("rebalance.in_flight").set(0)
        report = event.get("report")
        seconds = getattr(report, "simulated_seconds", None)
        if seconds is not None:
            self.histogram("rebalance", PHASE_REBALANCE).record(seconds)
            # Ops sampled while the rebalance ran already advanced the clock;
            # they were concurrent with the rebalance, so only the remainder
            # of its duration moves the timeline (no double counting).
            overlapped = self.clock.now - self._rebalance_started_at
            if seconds > overlapped:
                self.clock.advance(seconds - overlapped)

    def _on_rebalance_error(self, event: Event) -> None:
        self.phase = PHASE_STEADY
        self.counter("rebalance.errors").increment()
        self.gauge("rebalance.in_flight").set(0)

    def _on_rebalance_phase(self, event: Event) -> None:
        phase_name = event.get("phase", "unknown")
        self.counter(f"rebalance.phase.{phase_name}").increment()

    def _on_ingest_complete(self, event: Event) -> None:
        self.counter("ingest.records").increment(int(event.get("records", 0)))
        self.counter("ingest.splits").increment(int(event.get("splits", 0)))

    def _on_node_change(self, event: Event) -> None:
        nodes = event.get("nodes")
        if nodes is not None:
            self.gauge("cluster.nodes").set(int(nodes))

    def _on_dataset_create(self, event: Event) -> None:
        self.counter("datasets.created").increment()

    def _on_dataset_drop(self, event: Event) -> None:
        self.counter("datasets.dropped").increment()

    def _on_autopilot(self, event: Event) -> None:
        """Count every ``autopilot.*`` lifecycle event by its full name, so
        control-plane decisions appear in snapshots like any other telemetry
        (e.g. ``autopilot.decision``, ``autopilot.rebalance.complete``)."""
        self.counter(event.name).increment()
        if event.name == "autopilot.start":
            self.gauge("autopilot.active").set(1)
        elif event.name == "autopilot.stop":
            self.gauge("autopilot.active").set(0)

    def _on_chaos(self, event: Event) -> None:
        """Count every injected ``chaos.*`` fault by its full name.  These
        events only fire when a chaos engine is installed, so the standing
        subscription cannot perturb non-chaos snapshots."""
        self.counter(event.name).increment()

    def _on_retry(self, event: Event) -> None:
        """Count ``retry.*`` events by full name *and* per cluster phase
        (``retry.routing_miss.rebalance``), mirroring the ``ops.{op}.{phase}``
        idiom — a miss absorbed mid-rehash is the paper-relevant case."""
        self.counter(event.name).increment()
        self.counter(f"{event.name}.{self.phase}").increment()

    # ---------------------------------------------------------------- queries

    def latency(self, op: str, phase: Optional[str] = None) -> LatencyHistogram:
        """The latency histogram for ``op`` — one phase, or both merged.

        A read-only accessor: an (op, phase) that recorded nothing returns an
        empty histogram *without* registering one, so passive inspection
        never changes :meth:`snapshot` (the determinism contract).
        """
        if phase is not None:
            found = self._histograms.get((op, phase))
            return found if found is not None else LatencyHistogram()
        merged = LatencyHistogram()
        for (hist_op, _), histogram in sorted(self._histograms.items()):
            if hist_op == op:
                merged.merge(histogram)
        return merged

    def write_latency(self, phase: str) -> LatencyHistogram:
        """All write ops (insert/update/delete) merged, for one phase."""
        merged = LatencyHistogram()
        for op in WRITE_OPS:
            key = (op, phase)
            if key in self._histograms:
                merged.merge(self._histograms[key])
        return merged

    def latency_since(
        self, since: Optional[MetricsSnapshot], op: str, phase: str
    ) -> LatencyHistogram:
        """The ``(op, phase)`` samples recorded after ``since`` was taken.

        Lets a driver report per-run percentiles on a long-lived session whose
        registry accumulates across runs; ``since=None`` means "everything".
        """
        current = self._histograms.get((op, phase))
        if current is None:
            return LatencyHistogram()
        earlier = since.histograms.get(f"{op}[{phase}]") if since is not None else None
        return current.since(earlier)

    def write_latency_since(
        self, since: Optional[MetricsSnapshot], phase: str
    ) -> LatencyHistogram:
        """All write ops recorded after ``since``, merged, for one phase."""
        merged = LatencyHistogram()
        for op in WRITE_OPS:
            merged.merge(self.latency_since(since, op, phase))
        return merged

    def counter_value(self, name: str) -> float:
        """Read a counter without creating it (0 when never incremented).

        Unlike :meth:`counter`, passive reads never register a zero-valued
        counter, so inspection cannot perturb :meth:`snapshot` equality (the
        determinism contract) — and unlike :meth:`snapshot` it does not copy
        every histogram just to read one number.
        """
        counter = self._counters.get(name)
        return counter.value if counter is not None else 0

    def gauge_value(self, name: str) -> float:
        """Read a gauge without creating it (0 when never set).

        The gauge counterpart of :meth:`counter_value`, with the same
        passive-read guarantee: inspection (e.g. the timeline recorder
        sampling ``rebalance.in_flight``) cannot perturb :meth:`snapshot`
        equality.
        """
        gauge = self._gauges.get(name)
        return gauge.value if gauge is not None else 0

    def ops_per_second(self, op: Optional[str] = None) -> float:
        """Throughput in operations per *simulated* second (read-only)."""
        if self.clock.now <= 0:
            return 0.0
        name = "ops.total" if op is None else f"ops.{op}"
        counter = self._counters.get(name)
        return (counter.value if counter is not None else 0) / self.clock.now

    # --------------------------------------------------------------- snapshot

    def snapshot(self) -> MetricsSnapshot:
        return MetricsSnapshot(
            phase=self.phase,
            simulated_seconds=self.clock.now,
            counters={name: c.value for name, c in sorted(self._counters.items())},
            gauges={name: g.value for name, g in sorted(self._gauges.items())},
            histograms={
                f"{op}[{phase}]": histogram.snapshot()
                for (op, phase), histogram in sorted(self._histograms.items())
            },
        )

    def summaries(self) -> Dict[str, Dict[str, float]]:
        """Percentile summaries per populated ``"op[phase]"`` histogram.

        The machine-readable companion of :meth:`report` — what the bench
        artifact writer persists (count, mean, p50/p95/p99, max in seconds).
        """
        return {
            f"{op}[{phase}]": histogram.summary()
            for (op, phase), histogram in sorted(self._histograms.items())
            if histogram.count
        }

    def report(self, unit: str = "ms") -> str:
        """An aligned latency table: one row per (op, phase) with percentiles."""
        scale = {"s": 1.0, "ms": 1e3, "us": 1e6}[unit]
        headers = [
            "op",
            "phase",
            "count",
            f"mean ({unit})",
            f"p50 ({unit})",
            f"p95 ({unit})",
            f"p99 ({unit})",
            f"max ({unit})",
        ]
        rows: List[List[Any]] = []
        ordered = sorted(
            self._histograms.items(),
            key=lambda item: (
                OP_NAMES.index(item[0][0]) if item[0][0] in OP_NAMES else len(OP_NAMES),
                item[0],
            ),
        )
        for (op, phase), histogram in ordered:
            if not histogram.count:
                continue
            summary = histogram.summary()
            rows.append(
                [
                    op,
                    phase,
                    int(summary["count"]),
                    summary["mean"] * scale,
                    summary["p50"] * scale,
                    summary["p95"] * scale,
                    summary["p99"] * scale,
                    summary["max"] * scale,
                ]
            )
        if not rows:
            return "(no operation samples recorded)"
        table = format_table(headers, rows)
        total = self._counters.get("ops.total")
        footer = (
            f"\n{int(total.value) if total is not None else 0} ops in "
            f"{self.clock.now:.3f} simulated seconds "
            f"({self.ops_per_second():.1f} ops/s), phase={self.phase}"
        )
        return table + footer

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        total = self._counters.get("ops.total")
        return (
            f"MetricsRegistry(phase={self.phase!r}, "
            f"ops={int(total.value) if total is not None else 0}, "
            f"sim_seconds={self.clock.now:.3f})"
        )
