"""Pytest bootstrap: make the in-tree ``repro`` package importable.

The benchmark environment is offline and cannot build editable wheels, so the
test and benchmark suites fall back to importing straight from ``src/``.  When
the package *is* properly installed this is harmless (the installed copy and
the source tree are the same files).
"""

import sys
from pathlib import Path

_SRC = Path(__file__).resolve().parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))
