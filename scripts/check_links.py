#!/usr/bin/env python3
"""Offline link checker for the repo's markdown documentation.

Walks README.md, CHANGES.md, ROADMAP.md, and everything under docs/, and
verifies every markdown link:

* **relative paths** must exist on disk (resolved from the linking file);
* **``path#anchor``** additionally needs a heading in the target file whose
  GitHub slug matches the anchor;
* **``#anchor``** must match a heading in the same file;
* **http(s) URLs** are *not* fetched (CI is offline-friendly) — they are only
  checked for obvious malformedness (whitespace).

Exit status 1 lists every broken link with its file and line number.

Usage::

    python scripts/check_links.py
"""

from __future__ import annotations

import re
import sys
from pathlib import Path
from typing import Dict, List, Set, Tuple

ROOT = Path(__file__).resolve().parents[1]

#: The documentation set the checker walks.
DOC_FILES = ("README.md", "CHANGES.md", "ROADMAP.md", "PAPER.md", "PAPERS.md")
DOC_DIRS = ("docs",)

#: ``[text](target)`` — good enough for the docs we write (no nested
#: brackets in link text, no angle-bracket targets).
LINK_PATTERN = re.compile(r"(?<!\!)\[[^\]]*\]\(([^)\s]+)\)")
IMAGE_PATTERN = re.compile(r"\!\[[^\]]*\]\(([^)\s]+)\)")
HEADING_PATTERN = re.compile(r"^#{1,6}\s+(.*)$")


def github_slug(heading: str) -> str:
    """GitHub's anchor slug for a heading line."""
    text = heading.strip().lower()
    # Inline code/emphasis markers vanish; then drop everything that is not
    # a word character, space, or hyphen; spaces become hyphens.
    text = text.replace("`", "").replace("*", "")
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def collect_files() -> List[Path]:
    files = [ROOT / name for name in DOC_FILES if (ROOT / name).exists()]
    for directory in DOC_DIRS:
        files.extend(sorted((ROOT / directory).rglob("*.md")))
    return files


def headings_of(path: Path, cache: Dict[Path, Set[str]]) -> Set[str]:
    if path not in cache:
        slugs: Set[str] = set()
        seen: Dict[str, int] = {}
        for line in path.read_text().splitlines():
            match = HEADING_PATTERN.match(line)
            if match:
                slug = github_slug(match.group(1))
                # GitHub de-duplicates repeated headings with -1, -2, ...
                if slug in seen:
                    seen[slug] += 1
                    slugs.add(f"{slug}-{seen[slug]}")
                else:
                    seen[slug] = 0
                    slugs.add(slug)
        cache[path] = slugs
    return cache[path]


def check_file(path: Path, cache: Dict[Path, Set[str]]) -> List[Tuple[int, str, str]]:
    problems: List[Tuple[int, str, str]] = []
    for line_number, line in enumerate(path.read_text().splitlines(), start=1):
        for pattern in (LINK_PATTERN, IMAGE_PATTERN):
            for target in pattern.findall(line):
                problem = check_target(path, target, cache)
                if problem:
                    problems.append((line_number, target, problem))
    return problems


def check_target(source: Path, target: str, cache: Dict[Path, Set[str]]) -> str:
    if target.startswith(("http://", "https://", "mailto:")):
        return ""  # offline: syntax-only
    if target.startswith("#"):
        anchor = target[1:]
        if anchor not in headings_of(source, cache):
            return f"no heading with anchor #{anchor} in {source.name}"
        return ""
    path_part, _, anchor = target.partition("#")
    resolved = (source.parent / path_part).resolve()
    if not resolved.exists():
        return f"file does not exist: {path_part}"
    if anchor:
        if resolved.suffix.lower() != ".md":
            return ""
        if anchor not in headings_of(resolved, cache):
            return f"no heading with anchor #{anchor} in {path_part}"
    return ""


def main() -> int:
    cache: Dict[Path, Set[str]] = {}
    files = collect_files()
    total_problems = 0
    for path in files:
        for line_number, target, problem in check_file(path, cache):
            print(f"{path.relative_to(ROOT)}:{line_number}: [{target}] {problem}")
            total_problems += 1
    if total_problems:
        print(f"\n{total_problems} broken link(s) across {len(files)} file(s)")
        return 1
    print(f"all links OK across {len(files)} markdown file(s)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
