#!/usr/bin/env python3
"""Regenerate the event-bus contract section of docs/ARCHITECTURE.md.

The section between the BEGIN/END markers is *derived* from the declared
contract in ``repro.common.event_contract`` — the same source
``repro.api.events.EVENT_NAMES`` and the reprolint event rules use — so the
architecture guide can never drift from what the code actually emits.

Usage::

    python scripts/gen_event_docs.py            # rewrite the section in place
    python scripts/gen_event_docs.py --check    # exit 1 if the docs are stale

``--check`` is the CI sync gate (run in the docs job beside
``gen_api_docs.py --check``).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(ROOT / "src"))

from repro.common.event_contract import render_contract_markdown  # noqa: E402

DOC_PATH = ROOT / "docs" / "ARCHITECTURE.md"

BEGIN = "<!-- BEGIN GENERATED EVENT CONTRACT (scripts/gen_event_docs.py) — do not edit by hand -->"
END = "<!-- END GENERATED EVENT CONTRACT -->"


def render_document(current: str) -> str:
    """The document with the marked section replaced by the generated body."""
    try:
        head, rest = current.split(BEGIN, 1)
        _, tail = rest.split(END, 1)
    except ValueError:
        raise SystemExit(
            f"{DOC_PATH}: missing the generated-section markers\n  {BEGIN}\n  {END}"
        ) from None
    return f"{head}{BEGIN}\n\n{render_contract_markdown()}\n{END}{tail}"


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit 1 if the committed section differs from the contract",
    )
    args = parser.parse_args(argv)

    current = DOC_PATH.read_text(encoding="utf-8")
    expected = render_document(current)
    if args.check:
        if current != expected:
            print(
                f"{DOC_PATH.relative_to(ROOT)} is stale: the event-contract "
                "section no longer matches repro.common.event_contract.\n"
                "Run: python scripts/gen_event_docs.py",
                file=sys.stderr,
            )
            return 1
        print("event-contract docs are in sync")
        return 0
    if current == expected:
        print(f"{DOC_PATH.relative_to(ROOT)} already in sync")
    else:
        DOC_PATH.write_text(expected, encoding="utf-8")
        print(f"rewrote the event-contract section of {DOC_PATH.relative_to(ROOT)}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
