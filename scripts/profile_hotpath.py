"""Ad-hoc profiling harness for the PR-4 hot-path work (not shipped to CI)."""
import cProfile
import pstats
import sys
import time

sys.path.insert(0, "src")

from repro.api import ClusterConfig, Database, WorkloadDriver, WorkloadSpec  # noqa: E402


def build_db():
    return Database(ClusterConfig(num_nodes=3, partitions_per_node=2, strategy="dynahash"))


def run_driver(ops=4000, mix="B"):
    db = build_db()
    spec = WorkloadSpec(dataset="t", initial_records=1000, mix=mix, default_ops=ops)
    driver = WorkloadDriver(db, spec)
    started = time.process_time()
    report = driver.run()
    elapsed = time.process_time() - started
    db.close()
    return report.total_ops / elapsed, elapsed


def run_ingest(rows=20000):
    db = build_db()
    db.create_dataset("bulk", primary_key="k")
    data = [{"k": i, "payload": f"{i:010d}" + "x" * 54} for i in range(rows)]
    feed = db.cluster.feed("bulk", batch_size=2000)
    started = time.process_time()
    feed.ingest(data)
    elapsed = time.process_time() - started
    db.close()
    return rows / elapsed, elapsed


def median_of(fn, repeats=5):
    samples = sorted(fn()[0] for _ in range(repeats))
    return samples[len(samples) // 2]


if __name__ == "__main__":
    what = sys.argv[1] if len(sys.argv) > 1 else "all"
    if what in ("driver", "all"):
        print(f"driver: {median_of(run_driver):,.0f} ops/sec (median of 5, cpu time)")
    if what in ("ingest", "all"):
        print(f"ingest: {median_of(run_ingest):,.0f} rows/sec (median of 5, cpu time)")
    if what == "profile-driver":
        cProfile.run("run_driver()", "/tmp/driver.prof")
        pstats.Stats("/tmp/driver.prof").sort_stats("cumulative").print_stats(35)
    if what == "profile-ingest":
        cProfile.run("run_ingest()", "/tmp/ingest.prof")
        pstats.Stats("/tmp/ingest.prof").sort_stats("cumulative").print_stats(30)
