#!/usr/bin/env python3
"""Regenerate every committed golden fixture from the current code, in one go.

Goldens pin behaviour, so they are only ever rewritten deliberately — after a
change that is *supposed* to alter what the simulator computes.  This script
is the single place that knows how each committed golden is produced:

* ``tests/integration/fixtures/driver_snapshots_golden.json`` — per-mix
  workload-driver snapshots (the PR-4 hot-path pins),
* ``tests/integration/fixtures/traffic_snapshot_golden.json`` — the traffic
  experiment snapshot at SMOKE scale,
* ``tests/sim/goldens/<scenario>.interleaved.json`` — full recordings
  (snapshot + trace + chaos log) of smoke-scale scenarios under the
  interleaved discrete-event engine.

Usage::

    python scripts/regen_goldens.py            # rewrite all goldens
    python scripts/regen_goldens.py --check    # exit 1 if any golden is stale

``--check`` regenerates every golden in memory and byte-compares it against
the committed file — the CI gate that a behaviour-changing PR cannot forget
to refresh (or deliberately bless) its goldens.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Callable, Dict

ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(ROOT / "src"))

FIXTURES = ROOT / "tests" / "integration" / "fixtures"
SIM_GOLDENS = ROOT / "tests" / "sim" / "goldens"

#: Scenarios committed as interleaved-engine goldens (smoke scale).
INTERLEAVED_SCENARIOS = ("chaos_storm", "traced_rebalance")


def driver_snapshots_golden() -> str:
    """Per-mix driver snapshots: tests/integration/test_hotpath_golden.py."""
    from repro.api import ClusterConfig, Database, WorkloadDriver, WorkloadSpec

    golden: Dict[str, dict] = {}
    for mix in ("A", "B", "E"):
        db = Database(ClusterConfig(num_nodes=3, partitions_per_node=2, strategy="dynahash"))
        spec = WorkloadSpec(dataset="t", initial_records=500, mix=mix, default_ops=600)
        report = WorkloadDriver(db, spec).run()
        golden[mix] = json.loads(report.snapshot.to_json())
        db.close()
    return json.dumps(golden, indent=1, sort_keys=True) + "\n"


def traffic_snapshot_golden() -> str:
    """SMOKE-scale traffic experiment: tests/integration/test_hotpath_golden.py."""
    from repro.bench.config import SMOKE
    from repro.bench.experiments import run_traffic_experiment

    result = run_traffic_experiment(SMOKE)
    return result.snapshot.to_json(indent=2) + "\n"


def interleaved_recording(name: str) -> str:
    """A smoke-scale interleaved recording: tests/sim/test_goldens.py."""
    from repro.scenario import load_scenario, recording_payload, run_scenario

    spec = load_scenario(ROOT / "examples" / "scenarios" / f"{name}.toml").scaled_down()
    result = run_scenario(spec, concurrency="interleaved")
    return json.dumps(recording_payload(result), sort_keys=True, indent=2) + "\n"


def generators() -> Dict[Path, Callable[[], str]]:
    table: Dict[Path, Callable[[], str]] = {
        FIXTURES / "driver_snapshots_golden.json": driver_snapshots_golden,
        FIXTURES / "traffic_snapshot_golden.json": traffic_snapshot_golden,
    }
    for name in INTERLEAVED_SCENARIOS:
        table[SIM_GOLDENS / f"{name}.interleaved.json"] = (
            lambda name=name: interleaved_recording(name)
        )
    return table


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--check",
        action="store_true",
        help="regenerate in memory and exit 1 if any committed golden differs",
    )
    args = parser.parse_args(argv)

    stale = []
    for path, generate in sorted(generators().items()):
        rel = path.relative_to(ROOT)
        content = generate()
        if args.check:
            committed = path.read_text() if path.exists() else None
            if committed != content:
                state = "missing" if committed is None else "stale"
                print(f"{state}: {rel}")
                stale.append(rel)
            else:
                print(f"ok: {rel}")
        else:
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(content)
            print(f"wrote {rel}")
    if stale:
        print(
            f"{len(stale)} golden(s) out of date — rerun `python scripts/regen_goldens.py` "
            "and commit the result"
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
