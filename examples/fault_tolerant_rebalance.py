"""Fault-tolerant rebalancing: crash the coordinator mid-rebalance and recover.

Demonstrates the Section V-D failure handling through the client API: a
rebalance is interrupted at two different protocol points (before and after
the COMMIT record is forced) via ``db.rebalance(..., fault_sites=[...])``,
recovery is run with ``db.recover()`` as the restarted CC would, and the
dataset ends up either exactly as it was (abort) or fully rebalanced (commit)
— never in between.

Run with::

    python examples/fault_tolerant_rebalance.py
"""

from repro.api import (
    BucketingConfig,
    ClusterConfig,
    Database,
    FaultInjected,
    KIB,
    LSMConfig,
    load_tpch,
)


def open_loaded_database() -> Database:
    config = ClusterConfig(
        num_nodes=4,
        partitions_per_node=2,
        lsm=LSMConfig(memory_component_bytes=32 * KIB),
        bucketing=BucketingConfig(max_bucket_bytes=48 * KIB),
        strategy="dynahash",
    )
    db = Database(config, workload_scale=100.0 / 0.0002)
    load_tpch(db, scale_factor=0.0008, tables=("orders", "lineitem"))
    return db


def interrupted_rebalance(fault_site: str) -> None:
    db = open_loaded_database()
    lineitem = db.dataset("lineitem")
    records_before = lineitem.count()

    try:
        db.rebalance(target_nodes=3, fault_sites=[fault_site])
        raise AssertionError("the injected fault should have fired")
    except FaultInjected as fault:
        print(f"rebalance interrupted by injected fault at {fault.site!r}")

    outcomes = db.recover()
    for outcome in outcomes:
        print(
            f"  recovery: rebalance #{outcome.rebalance_id} on "
            f"{outcome.dataset!r} -> {outcome.action}"
        )

    assert lineitem.count() == records_before
    sample_row = next(iter(lineitem.scan()))
    sample_key = lineitem.spec.primary_key_of(sample_row)
    assert lineitem.get(sample_key) is not None
    print(
        f"  dataset consistent: {records_before} records, "
        f"sample key {sample_key} readable\n"
    )
    db.close()


def main() -> None:
    print("Case 3: coordinator fails before forcing COMMIT (rebalance aborts)\n")
    interrupted_rebalance("cc_fail_before_commit")
    print("Case 5: coordinator fails after forcing COMMIT (rebalance completes on recovery)\n")
    interrupted_rebalance("cc_fail_after_commit")


if __name__ == "__main__":
    main()
