"""Fault-tolerant rebalancing: crash the coordinator mid-rebalance and recover.

Demonstrates the Section V-D failure handling: a rebalance is interrupted at
two different protocol points (before and after the COMMIT record is forced),
the recovery manager is run as the restarted CC would, and the dataset ends up
either exactly as it was (abort) or fully rebalanced (commit) — never in
between.

Run with::

    python examples/fault_tolerant_rebalance.py
"""

from repro.bench import SMOKE, build_loaded_cluster
from repro.common.errors import FaultInjected
from repro.rebalance import FaultInjector, RebalanceOperation, RebalanceRecoveryManager


def interrupted_rebalance(fault_site: str) -> None:
    cluster, _workload, _load = build_loaded_cluster(
        SMOKE, num_nodes=4, strategy_name="DynaHash"
    )
    records_before = cluster.record_count("lineitem")
    target_partitions = [pid for node in cluster.nodes[:3] for pid in node.partition_ids]

    operation = RebalanceOperation(
        cluster,
        "lineitem",
        target_partitions,
        fault_injector=FaultInjector([fault_site]),
    )
    try:
        operation.run()
        raise AssertionError("the injected fault should have fired")
    except FaultInjected as fault:
        print(f"rebalance interrupted by injected fault at {fault.site!r}")

    outcomes = RebalanceRecoveryManager(cluster).recover()
    for outcome in outcomes:
        print(f"  recovery: rebalance #{outcome.rebalance_id} on {outcome.dataset!r} -> {outcome.action}")

    assert cluster.record_count("lineitem") == records_before
    sample_key = next(iter(cluster.dataset("lineitem").partitions.values())).primary.scan().__next__().key
    assert cluster.lookup("lineitem", sample_key) is not None
    print(f"  dataset consistent: {records_before} records, sample key {sample_key} readable\n")


def main() -> None:
    print("Case 3: coordinator fails before forcing COMMIT (rebalance aborts)\n")
    interrupted_rebalance("cc_fail_before_commit")
    print("Case 5: coordinator fails after forcing COMMIT (rebalance completes on recovery)\n")
    interrupted_rebalance("cc_fail_after_commit")


if __name__ == "__main__":
    main()
