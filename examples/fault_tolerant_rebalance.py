"""Fault-tolerant rebalancing: crash the coordinator mid-rebalance, recover.

The scenario lives in ``examples/scenarios/fault_tolerant_rebalance.toml`` —
two injected coordinator crashes (before and after the COMMIT record is
forced) each followed by recovery, demonstrating the paper's Section V-D
failure cases: the dataset ends up exactly as it was (abort) or fully
rebalanced (commit), never in between.  This script is a thin wrapper over
the scenario CLI; the two invocations below are equivalent::

    python examples/fault_tolerant_rebalance.py
    python -m repro run examples/scenarios/fault_tolerant_rebalance.toml
"""

import sys
from pathlib import Path

from repro.cli import main

SPEC = Path(__file__).resolve().parent / "scenarios" / "fault_tolerant_rebalance.toml"

if __name__ == "__main__":
    sys.exit(main(["run", str(SPEC)]))
