"""Quickstart: datasets, traffic, and an online scale-in, in one scenario.

The scenario lives in ``examples/scenarios/quickstart.toml`` — the paper's
4-node layout, an AsterixDB-style dataset with a covering secondary index, a
short YCSB-B workload, and a one-node online rebalance.  This script is a
thin wrapper over the scenario CLI; the two invocations below are
equivalent::

    python examples/quickstart.py
    python -m repro run examples/scenarios/quickstart.toml

For the same tour through the Python client API itself (fluent queries,
handle verbs, lifecycle events), see the README quickstart and
``docs/COOKBOOK.md``.
"""

import sys
from pathlib import Path

from repro.cli import main

SPEC = Path(__file__).resolve().parent / "scenarios" / "quickstart.toml"

if __name__ == "__main__":
    sys.exit(main(["run", str(SPEC)]))
