"""Quickstart: create a DynaHash cluster, ingest data, and scale it in.

Run with::

    python examples/quickstart.py
"""

from repro import ClusterConfig, SimulatedCluster
from repro.cluster.dataset import SecondaryIndexSpec
from repro.common.config import BucketingConfig, LSMConfig
from repro.common.units import KIB
from repro.rebalance import DynaHashStrategy


def main() -> None:
    # A 4-node cluster with 4 storage partitions per node (the paper's layout),
    # using DynaHash: extendible-hash buckets that split at a maximum size.
    config = ClusterConfig(
        num_nodes=4,
        partitions_per_node=4,
        lsm=LSMConfig(memory_component_bytes=32 * KIB),
        bucketing=BucketingConfig(max_bucket_bytes=64 * KIB),
    )
    cluster = SimulatedCluster(config, strategy=DynaHashStrategy(max_bucket_bytes=64 * KIB))

    # A dataset with a secondary index, like an AsterixDB dataset.
    cluster.create_dataset(
        "orders",
        primary_key="o_orderkey",
        secondary_indexes=[
            SecondaryIndexSpec("idx_orderdate", ("o_orderdate",), included_fields=("o_custkey",))
        ],
    )

    # Ingest through a data feed; the report carries the simulated time.
    rows = [
        {
            "o_orderkey": key,
            "o_custkey": key % 500,
            "o_orderdate": f"199{5 + key % 3}-{(key % 12) + 1:02d}-01",
            "o_totalprice": float(key % 9000),
        }
        for key in range(20_000)
    ]
    ingest = cluster.ingest("orders", rows)
    print("ingest:", ingest.summary())
    print("cluster:", cluster.describe())

    # Point lookups route through the extendible-hash global directory.
    print("lookup 1234:", cluster.lookup("orders", 1234))

    # Scale the cluster in by one node: an online rebalance moves only the
    # affected buckets and every record stays readable.
    report = cluster.remove_nodes(1)
    print("rebalance:", report.summary())
    for dataset_report in report.dataset_reports:
        print("  ", dataset_report.summary())
    assert cluster.lookup("orders", 1234)["o_custkey"] == 1234 % 500
    print("records after rebalance:", cluster.record_count("orders"))


if __name__ == "__main__":
    main()
