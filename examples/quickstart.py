"""Quickstart for the ``repro.api`` client surface.

Opens a :class:`~repro.api.Database` session on a 4-node DynaHash cluster,
creates a dataset with a covering secondary index, and walks the dataset
handle's verbs — ``insert`` / ``upsert`` / ``delete`` / ``get`` / ``scan`` /
fluent ``query()`` — before scaling the cluster in with an online rebalance
while lifecycle events stream to a subscriber.

Run with::

    python examples/quickstart.py
"""

from repro.api import (
    BucketingConfig,
    ClusterConfig,
    Database,
    KIB,
    LSMConfig,
    SecondaryIndexSpec,
    resolve_strategy,
)


def main() -> None:
    # A 4-node cluster with 4 storage partitions per node (the paper's layout),
    # using DynaHash: extendible-hash buckets that split at a maximum size.
    # Strategies are named through the registry; options go to the factory.
    config = ClusterConfig(
        num_nodes=4,
        partitions_per_node=4,
        lsm=LSMConfig(memory_component_bytes=32 * KIB),
        bucketing=BucketingConfig(max_bucket_bytes=64 * KIB),
    )
    strategy = resolve_strategy("dynahash", max_bucket_bytes=64 * KIB)

    with Database(config, strategy=strategy) as db:
        # Watch the rebalance lifecycle as it happens.
        db.on("rebalance.*", lambda event: print(f"  [event] {event.name}"))

        # A dataset with a secondary index, like an AsterixDB dataset.
        orders = db.create_dataset(
            "orders",
            primary_key="o_orderkey",
            secondary_indexes=[
                SecondaryIndexSpec(
                    "idx_orderdate", ("o_orderdate",), included_fields=("o_custkey",)
                )
            ],
        )

        # Ingest through a data feed; the report carries the simulated time.
        rows = [
            {
                "o_orderkey": key,
                "o_custkey": key % 500,
                "o_orderdate": f"199{5 + key % 3}-{(key % 12) + 1:02d}-01",
                "o_totalprice": float(key % 9000),
            }
            for key in range(20_000)
        ]
        ingest = orders.insert(rows)
        print("ingest:", ingest.summary())
        print("cluster:", db.describe())

        # Point lookups route through the extendible-hash global directory.
        print("get 1234:", orders.get(1234))

        # Upserts replace by primary key; deletes tombstone.
        orders.upsert([{**orders.get(1234), "o_totalprice": 123.45}])
        assert orders.get(1234)["o_totalprice"] == 123.45
        deleted = orders.delete([19_998, 19_999])
        print("delete:", deleted.summary())

        # A fluent query: top customers by spend (real rows + simulated time).
        top = (
            orders.query()
            .filter(lambda row: row["o_totalprice"] > 0.0)
            .group_by("o_custkey")
            .aggregate(total=("sum", "o_totalprice"), orders=("count", None))
            .order_by("total", descending=True)
            .limit(3)
            .execute()
        )
        print("top customers:", list(top))
        print("query:", top.report.summary())

        # Scale the cluster in by one node: an online rebalance moves only the
        # affected buckets and every record stays readable.
        report = db.rebalance(remove=1)
        print("rebalance:", report.summary())
        for dataset_report in report.dataset_reports:
            print("  ", dataset_report.summary())
        assert orders.get(1234)["o_custkey"] == 1234 % 500
        print("records after rebalance:", orders.count())


if __name__ == "__main__":
    main()
