"""Traffic storm: a zipfian hotspot spike during a node-add rebalance.

The paper's headline claim is that DynaHash rehashes buckets with minimal
disruption to foreground traffic.  This example drives a YCSB-A-style mixed
read/update workload through the client API in four phases — warmup, steady,
a hotspot spike that lands *while* the cluster is rebalancing onto a new
node, and a cool-down ramp — and then reads the answer off ``db.metrics``:
every operation sample is tagged with the cluster phase in flight, so "p99
write latency during the rehash" (the paper's Figure 7c story) is a
first-class metric rather than a bespoke experiment.

Run with::

    python examples/traffic_storm.py
"""

import time

from repro.api import (
    BucketingConfig,
    ClusterConfig,
    Database,
    KIB,
    LSMConfig,
    PHASE_REBALANCE,
    PHASE_STEADY,
    WorkloadDriver,
    WorkloadSpec,
    format_table,
    storm_schedule,
)
from repro.bench.artifacts import write_bench_artifact

NUM_NODES = 3
INITIAL_RECORDS = 800


def open_database() -> Database:
    config = ClusterConfig(
        num_nodes=NUM_NODES,
        partitions_per_node=2,
        lsm=LSMConfig(memory_component_bytes=32 * KIB),
        bucketing=BucketingConfig(max_bucket_bytes=48 * KIB),
        strategy="dynahash",
    )
    # Traffic runs at workload_scale=1: each op's simulated latency is a
    # client-visible service time, not a paper-scale projection.
    return Database(config)


def main() -> None:
    with open_database() as db:
        spec = WorkloadSpec(
            dataset="traffic",
            initial_records=INITIAL_RECORDS,
            mix="A",  # YCSB-A: 50% read / 50% update
            keys="zipfian",
            schedule=storm_schedule(
                warmup=100,
                steady=400,
                spike=300,
                ramp=100,
                rebalance={"add": 1},  # the spike lands during this resize
                spike_keys="hotspot",
            ),
        )
        driver = WorkloadDriver(db, spec)  # seeded from ClusterConfig.seed
        wall_started = time.perf_counter()
        report = driver.run()
        wall_seconds = time.perf_counter() - wall_started

        print(report.summary())
        spike = report.phase("spike")
        rebalance = spike.rebalance_report
        print(
            f"\nspike phase overlapped rebalance {rebalance.old_nodes} -> "
            f"{rebalance.new_nodes} nodes: {rebalance.total_records_moved} records "
            f"moved, {sum(r.replicated_log_records for r in rebalance.dataset_reports)} "
            "concurrent writes replicated to moving buckets"
        )

        print("\nPer-op latency by cluster phase (simulated ms):")
        print(db.metrics.report())

        rows = []
        for phase in (PHASE_STEADY, PHASE_REBALANCE):
            writes = db.metrics.write_latency(phase)
            reads = db.metrics.latency("read", phase)
            rows.append(
                [
                    phase,
                    int(writes.count),
                    round(writes.percentile(0.99) * 1e3, 3),
                    int(reads.count),
                    round(reads.percentile(0.99) * 1e3, 3),
                ]
            )
        print("\nFigure 7c story — tail latency by cluster phase:")
        print(
            format_table(
                ["phase", "writes", "write p99 (ms)", "reads", "read p99 (ms)"],
                rows,
            )
        )

        # Feed the perf trajectory: when REPRO_BENCH_ARTIFACT_DIR is set (the
        # CI perf-gate job does), persist this storm's throughput — both the
        # driver's real wall-clock ops/sec and the simulated-time rate — next
        # to the phase-tagged percentiles.
        artifact_path = write_bench_artifact(
            "traffic_storm",
            {
                "name": "traffic_storm",
                "total_ops": report.total_ops,
                "wall_seconds": wall_seconds,
                "wall_ops_per_second": report.total_ops / wall_seconds
                if wall_seconds > 0
                else 0.0,
                "simulated_seconds": report.simulated_seconds,
                "write_p99_ms": {
                    phase: seconds * 1e3
                    for phase, seconds in report.write_p99_seconds.items()
                },
                "read_p99_ms": {
                    phase: seconds * 1e3
                    for phase, seconds in report.read_p99_seconds.items()
                },
                "op_phase_percentiles": db.metrics.summaries(),
            },
        )
        if artifact_path is not None:
            print(f"\nperf artifact written: {artifact_path}")

        steady_p99 = db.metrics.write_latency(PHASE_STEADY).percentile(0.99)
        rehash_p99 = db.metrics.write_latency(PHASE_REBALANCE).percentile(0.99)
        assert rehash_p99 >= steady_p99, "writes mid-rehash pay the replication hop"
        assert db.num_nodes == NUM_NODES + 1
        print(
            f"\nWrites during the rehash pay the log-replication round trip "
            f"(p99 {rehash_p99 * 1e3:.3f} ms vs {steady_p99 * 1e3:.3f} ms steady), "
            "but traffic never stopped and every record stayed readable."
        )


if __name__ == "__main__":
    main()
