"""Traffic storm: a zipfian hotspot spike during a node-add rebalance.

The scenario lives in ``examples/scenarios/traffic_storm.toml`` — a YCSB-A
mixed workload whose spike phase lands *while* the cluster rebalances onto a
new node, with phase-tagged tail latencies telling the paper's Figure 7c
story.  This script is a thin wrapper over the scenario CLI; the two
invocations below are equivalent::

    python examples/traffic_storm.py
    python -m repro run examples/scenarios/traffic_storm.toml
"""

import sys
from pathlib import Path

from repro.cli import main

SPEC = Path(__file__).resolve().parent / "scenarios" / "traffic_storm.toml"

if __name__ == "__main__":
    sys.exit(main(["run", str(SPEC)]))
