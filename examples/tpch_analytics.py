"""TPC-H analytics on a DynaHash cluster, before and after an online rebalance.

Loads a small TPC-H instance through the client API, runs real relational
plans for q1, q6 and q3 with ``db.execute``, rebalances the cluster down by
one node, and re-runs the same queries to show that the answers are identical
while the bucketed storage reports its (simulated) execution times.  A fluent
query over the Orders handle shows the same engine through the builder.

Run with::

    python examples/tpch_analytics.py
"""

from repro.api import (
    BucketingConfig,
    ClusterConfig,
    Database,
    KIB,
    LSMConfig,
    load_tpch,
    q1_plan,
    q3_plan,
    q6_plan,
)

def run_queries(db: Database):
    results = {}
    for name, plan in (("q1", q1_plan()), ("q6", q6_plan()), ("q3", q3_plan())):
        result, report = db.execute(name, plan)
        results[name] = result
        print(f"  {report.summary()}")
    return results


def main() -> None:
    config = ClusterConfig(
        num_nodes=4,
        partitions_per_node=2,
        lsm=LSMConfig(memory_component_bytes=32 * KIB),
        bucketing=BucketingConfig(max_bucket_bytes=48 * KIB),
        strategy="dynahash",
    )
    with Database(config, workload_scale=100.0 / 0.0002) as db:
        load = load_tpch(db, scale_factor=0.0008)  # all tables (DEFAULT_TABLES)
        print(f"loaded TPC-H SF={load.scale_factor} ({load.total_rows} rows) onto 4 nodes")

        print("\nqueries on the original 4-node cluster:")
        before = run_queries(db)
        print("\nq1 groups:")
        for row in before["q1"]:
            print("  ", row)
        print("q6 revenue:", round(before["q6"]["revenue"], 2))

        # The fluent builder runs through the same executor and cost model.
        orders_by_priority = (
            db["orders"].query("orders_by_priority")
            .group_by("o_orderpriority")
            .aggregate(orders=("count", None))
            .order_by("o_orderpriority")
            .execute()
        )
        print("\norders by priority:", list(orders_by_priority))

        report = db.rebalance(remove=1)
        print(f"\nrebalanced to 3 nodes: {report.summary()}")

        print("\nsame queries on the downsized cluster:")
        after = run_queries(db)

        assert round(before["q6"]["revenue"], 6) == round(after["q6"]["revenue"], 6)
        assert len(before["q1"]) == len(after["q1"])
        print("\nanswers are identical before and after the rebalance")


if __name__ == "__main__":
    main()
