"""TPC-H analytics on a DynaHash cluster, before and after an online rebalance.

Loads a small TPC-H instance, runs real relational plans for q1, q6 and q3
through the cluster query executor, rebalances the cluster down by one node,
and re-runs the same queries to show that the answers are identical while the
bucketed storage reports its (simulated) execution times.

Run with::

    python examples/tpch_analytics.py
"""

from repro.bench import SMOKE, build_loaded_cluster
from repro.bench.experiments import QUERY_TABLES
from repro.query import ClusterQueryExecutor
from repro.tpch import q1_plan, q3_plan, q6_plan


def run_queries(executor: ClusterQueryExecutor):
    results = {}
    for name, plan in (("q1", q1_plan()), ("q6", q6_plan()), ("q3", q3_plan())):
        result, report = executor.execute_plan(name, plan)
        results[name] = result
        print(f"  {report.summary()}")
    return results


def main() -> None:
    cluster, _workload, load = build_loaded_cluster(
        SMOKE, num_nodes=4, strategy_name="DynaHash", tables=QUERY_TABLES
    )
    print(f"loaded TPC-H SF={load.scale_factor} ({load.total_rows} rows) onto 4 nodes")
    executor = ClusterQueryExecutor(cluster)

    print("\nqueries on the original 4-node cluster:")
    before = run_queries(executor)
    print("\nq1 groups:")
    for row in before["q1"]:
        print("  ", row)
    print("q6 revenue:", round(before["q6"]["revenue"], 2))

    report = cluster.remove_nodes(1)
    print(f"\nrebalanced to 3 nodes: {report.summary()}")

    print("\nsame queries on the downsized cluster:")
    after = run_queries(ClusterQueryExecutor(cluster))

    assert round(before["q6"]["revenue"], 6) == round(after["q6"]["revenue"], 6)
    assert len(before["q1"]) == len(after["q1"])
    print("\nanswers are identical before and after the rebalance")


if __name__ == "__main__":
    main()
