"""TPC-H analytics on a DynaHash cluster, before and after an online rebalance.

The scenario lives in ``examples/scenarios/tpch_analytics.toml`` — Q1/Q6/Q3
as real relational plans, run before and after a one-node scale-in, with the
``queries_identical_across_rebalance`` check asserting the answers match.
This script is a thin wrapper over the scenario CLI; the two invocations
below are equivalent::

    python examples/tpch_analytics.py
    python -m repro run examples/scenarios/tpch_analytics.toml
"""

import sys
from pathlib import Path

from repro.cli import main

SPEC = Path(__file__).resolve().parent / "scenarios" / "tpch_analytics.toml"

if __name__ == "__main__":
    sys.exit(main(["run", str(SPEC)]))
