"""Autopilot storm: a hotspot spike that rebalances the cluster *by itself*.

The paper argues dynamic hashing makes rebalancing cheap enough to do often;
this example closes the loop.  A YCSB-B zipfian workload runs four phases —
warmup, steady, an insert-heavy hotspot spike, and a cool-down — with **no**
``rebalance=`` key anywhere in the schedule and no explicit ``db.rebalance``
call.  Instead, ``db.autopilot(policy="cost_aware")`` watches the session's
metrics as the traffic flows:

1. **detect** — the spike's insert volume pushes the hottest node through the
   policy's capacity high-water mark;
2. **plan** — the policy simulates candidate plans (re-target, add a node)
   through the what-if planner and the cluster cost model, and picks the
   cheapest one whose projected post-move balance clears its bar;
3. **rebalance** — the engine executes the plan through the normal DynaHash
   machinery, mid-run, while traffic keeps flowing;
4. **recover** — the cool-down phase runs on the grown cluster, and the
   phase-tagged metrics show both sides of the story.

Everything is deterministic under ``ClusterConfig.seed``: run it twice and
the autopilot makes the identical decisions at the identical simulated times.

Run with::

    python examples/autopilot_storm.py
"""

from repro.api import (
    BucketingConfig,
    ClusterConfig,
    Database,
    KIB,
    LSMConfig,
    OperationMix,
    PHASE_REBALANCE,
    PHASE_STEADY,
    Phase,
    Schedule,
    WorkloadDriver,
    WorkloadSpec,
    format_table,
)

NUM_NODES = 3
INITIAL_RECORDS = 600
#: Per-node capacity budget: the preload sits near 50% mean utilization and
#: the spike pushes the hottest node through the 85% high-water mark.
NODE_CAPACITY_BYTES = 52 * KIB


def open_database() -> Database:
    config = ClusterConfig(
        num_nodes=NUM_NODES,
        partitions_per_node=2,
        lsm=LSMConfig(memory_component_bytes=32 * KIB),
        bucketing=BucketingConfig(max_bucket_bytes=48 * KIB),
        strategy="dynahash",
    )
    return Database(config)


def main() -> None:
    with open_database() as db:
        pilot = db.autopilot(
            policy="cost_aware",
            policy_options={
                "node_capacity_bytes": NODE_CAPACITY_BYTES,
                # Sit above the preload's natural bucket skew so the *spike*,
                # not the initial layout, is what trips the policy.
                "balance_bar": 1.8,
            },
            check_every_ops=40,
            cooldown_seconds=0.05,
        )

        spike_mix = OperationMix(name="spike", read=0.3, insert=0.6, update=0.1)
        spec = WorkloadSpec(
            dataset="traffic",
            initial_records=INITIAL_RECORDS,
            mix="B",  # YCSB-B: 95% read / 5% update
            keys="zipfian",
            schedule=Schedule(
                (
                    Phase(name="warmup", ops=80, keys="uniform"),
                    Phase(name="steady", ops=240),
                    Phase(name="spike", ops=320, keys="hotspot", mix=spike_mix),
                    Phase(name="recover", ops=160),
                )
            ),
        )
        driver = WorkloadDriver(db, spec)  # seeded from ClusterConfig.seed
        report = driver.run()

        print(report.summary())
        print("\nAutopilot decision log:")
        print(pilot.summary())

        snapshot = db.metrics.snapshot()
        autopilot_counters = [
            [name, int(value)]
            for name, value in snapshot.counters.items()
            if name.startswith("autopilot.")
        ]
        print("\nautopilot.* events as seen by the metrics registry:")
        print(format_table(["event", "count"], autopilot_counters))

        print("\nPer-op latency by cluster phase (simulated ms):")
        print(db.metrics.report())

        rows = []
        for phase in (PHASE_STEADY, PHASE_REBALANCE):
            writes = db.metrics.write_latency(phase)
            reads = db.metrics.latency("read", phase)
            rows.append(
                [
                    phase,
                    int(writes.count),
                    round(writes.percentile(0.99) * 1e3, 3),
                    int(reads.count),
                    round(reads.percentile(0.99) * 1e3, 3),
                ]
            )
        print("\nTail latency by cluster phase:")
        print(
            format_table(
                ["phase", "writes", "write p99 (ms)", "reads", "read p99 (ms)"], rows
            )
        )

        # The contract this example demonstrates (and CI asserts):
        # detect -> plan -> rebalance happened with zero explicit rebalance
        # calls, and the loop closed while traffic kept flowing.
        assert report.autopilot_rebalances >= 1, "the autopilot never acted"
        assert all(phase.rebalance_report is None for phase in report.phases)
        assert db.num_nodes > NUM_NODES
        assert snapshot.counters["autopilot.decision"] >= 1
        assert snapshot.counters["autopilot.rebalance.complete"] >= 1
        executed = [d for d in report.autopilot_decisions if d.outcome == "executed"]
        print(
            f"\nThe autopilot grew the cluster {NUM_NODES} -> {db.num_nodes} nodes "
            f"mid-run ({executed[0].reason}), with zero explicit rebalance calls; "
            "traffic never stopped and the recover phase ran on the new layout."
        )


if __name__ == "__main__":
    main()
