"""Autopilot storm: a hotspot spike that rebalances the cluster *by itself*.

The scenario lives in ``examples/scenarios/autopilot_storm.toml`` — a YCSB-B
zipfian storm with **no** scheduled rebalance, where the cost-aware autopilot
closes the detect → plan → rebalance → recover loop mid-run.  This script is
a thin wrapper over the scenario CLI; the two invocations below are
equivalent (same seed ⇒ bit-identical metrics snapshot)::

    python examples/autopilot_storm.py
    python -m repro run examples/scenarios/autopilot_storm.toml
"""

import sys
from pathlib import Path

from repro.cli import main

SPEC = Path(__file__).resolve().parent / "scenarios" / "autopilot_storm.toml"

if __name__ == "__main__":
    sys.exit(main(["run", str(SPEC)]))
