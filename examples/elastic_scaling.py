"""Elastic scaling scenario: compare rebalancing approaches when resizing.

The paper's motivation: clusters are scaled in and out with the workload, so
the data-rebalancing cost matters.  This example loads the same TPC-H subset
into three databases — one per registered rebalancing strategy — removes a
node, adds it back, and prints how much data each approach had to move and
how long the (simulated) rebalances took.

Run with::

    python examples/elastic_scaling.py
"""

from repro.api import (
    BucketingConfig,
    ClusterConfig,
    Database,
    KIB,
    LSMConfig,
    format_table,
    load_tpch,
)

#: Reduced-scale setup: the paper loads SF=100 per node; we load
#: SCALE_PER_NODE and let the cost model's workload scale bridge the rest.
NUM_NODES = 4
SCALE_PER_NODE = 0.0001
WORKLOAD_SCALE = 100.0 / SCALE_PER_NODE

#: Strategy name (registry key) -> factory options, as the paper configures
#: them: StaticHash uses a fixed 64-bucket layout at this reduced scale,
#: DynaHash splits at the configured maximum bucket size.
STRATEGIES = {
    "hashing": {},
    "static": {"total_buckets": 64},
    "dynahash": {},
}


def open_database(strategy_name: str) -> Database:
    config = ClusterConfig(
        num_nodes=NUM_NODES,
        partitions_per_node=2,
        lsm=LSMConfig(memory_component_bytes=32 * KIB),
        bucketing=BucketingConfig(max_bucket_bytes=48 * KIB),
        strategy=strategy_name,
    )
    return Database(
        config,
        workload_scale=WORKLOAD_SCALE,
        strategy_options=STRATEGIES[strategy_name],
    )


def main() -> None:
    rows = []
    for strategy_name in STRATEGIES:
        with open_database(strategy_name) as db:
            load_tpch(
                db,
                scale_factor=SCALE_PER_NODE * NUM_NODES,
                tables=("orders", "lineitem"),
            )
            records = db["lineitem"].count() + db["orders"].count()

            remove_report = db.rebalance(remove=1)
            add_report = db.rebalance(add=1)

            rows.append(
                [
                    remove_report.strategy,
                    records,
                    remove_report.total_records_moved,
                    round(remove_report.simulated_minutes, 1),
                    add_report.total_records_moved,
                    round(add_report.simulated_minutes, 1),
                ]
            )
            # Data is intact after scaling in and back out.
            assert db["lineitem"].count() + db["orders"].count() == records

    print(
        format_table(
            [
                "approach",
                "records stored",
                "records moved (remove)",
                "remove minutes",
                "records moved (add)",
                "add minutes",
            ],
            rows,
        )
    )
    print(
        "\nDynaHash/StaticHash move only the displaced buckets; the Hashing baseline "
        "re-partitions nearly every record."
    )


if __name__ == "__main__":
    main()
