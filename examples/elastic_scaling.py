"""Elastic scaling scenario: compare rebalancing approaches when resizing.

The paper's motivation: clusters are scaled in and out with the workload, so
the data-rebalancing cost matters.  This example loads the same TPC-H subset
into three clusters — one per rebalancing approach — removes a node, adds it
back, and prints how much data each approach had to move and how long the
(simulated) rebalances took.

Run with::

    python examples/elastic_scaling.py
"""

from repro.bench import SMOKE, build_loaded_cluster, make_strategy
from repro.bench.reporting import format_table


def main() -> None:
    scale = SMOKE
    rows = []
    for strategy_name in ("Hashing", "StaticHash", "DynaHash"):
        cluster, _workload, load = build_loaded_cluster(scale, num_nodes=4, strategy_name=strategy_name)
        records = cluster.record_count("lineitem") + cluster.record_count("orders")

        remove_report = cluster.remove_nodes(1)
        add_report = cluster.add_nodes(1)

        rows.append(
            [
                strategy_name,
                records,
                remove_report.total_records_moved,
                round(remove_report.simulated_minutes, 1),
                add_report.total_records_moved,
                round(add_report.simulated_minutes, 1),
            ]
        )
        # Data is intact after scaling in and back out.
        assert cluster.record_count("lineitem") + cluster.record_count("orders") == records

    print(
        format_table(
            [
                "approach",
                "records stored",
                "records moved (remove)",
                "remove minutes",
                "records moved (add)",
                "add minutes",
            ],
            rows,
        )
    )
    print(
        "\nDynaHash/StaticHash move only the displaced buckets; the Hashing baseline "
        "re-partitions nearly every record."
    )


if __name__ == "__main__":
    main()
