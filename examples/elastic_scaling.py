"""Elastic scaling: compare rebalancing approaches when resizing a cluster.

The scenario lives in ``examples/scenarios/elastic_scaling.toml`` — a TPC-H
subset scaled in by one node and back out.  This script is a thin wrapper
over the scenario CLI that runs the same spec once per registered strategy
(the CLI's ``--strategy`` override), reproducing the paper's comparison:
DynaHash and StaticHash move only the displaced buckets, while the Hashing
baseline re-partitions nearly every record.  Each run is equivalent to::

    python -m repro run examples/scenarios/elastic_scaling.toml --strategy <name>
"""

import sys
from pathlib import Path

from repro.cli import main

SPEC = Path(__file__).resolve().parent / "scenarios" / "elastic_scaling.toml"

#: The paper's three approaches, by registry name.  A --strategy override
#: drops the spec's strategy_options, so each strategy runs on its defaults.
STRATEGIES = ("hashing", "static", "dynahash")

if __name__ == "__main__":
    for strategy in STRATEGIES:
        print(f"==== strategy: {strategy}")
        code = main(["run", str(SPEC), "--strategy", strategy])
        if code:
            sys.exit(code)
        print()
    sys.exit(0)
