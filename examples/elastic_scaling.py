"""Elastic scaling: compare rebalancing approaches when resizing a cluster.

The grid lives in ``examples/scenarios/elastic_scaling_sweep.toml`` — a
TPC-H subset scaled in by one node and back out, swept over the paper's
three strategies via its ``[sweep]`` section.  This script is a thin wrapper
over the scenario CLI: one ``sweep`` run produces a recording per strategy
plus a manifest, and ``compare`` renders the head-to-head tables (DynaHash
and StaticHash move only the displaced buckets, while the Hashing baseline
re-partitions nearly every record).  Equivalent to::

    python -m repro sweep examples/scenarios/elastic_scaling_sweep.toml --out-dir OUT
    python -m repro compare OUT/sweep.manifest.json
"""

import sys
import tempfile
from pathlib import Path

from repro.cli import main

SPEC = Path(__file__).resolve().parent / "scenarios" / "elastic_scaling_sweep.toml"

if __name__ == "__main__":
    with tempfile.TemporaryDirectory(prefix="elastic_scaling_sweep_") as out_dir:
        code = main(["sweep", str(SPEC), "--out-dir", out_dir])
        if code:
            sys.exit(code)
        print()
        sys.exit(main(["compare", str(Path(out_dir) / "sweep.manifest.json")]))
