"""Legacy setup shim.

The environment this reproduction targets has no network access and no
``wheel`` package, so modern PEP-517 editable installs (which build an
editable wheel) are not available.  This shim lets
``pip install -e . --no-build-isolation --no-use-pep517`` — or a plain
``python setup.py develop`` — perform a legacy editable install.  All project
metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
